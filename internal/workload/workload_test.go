package workload

import (
	"math"
	"testing"

	"spottune/internal/earlycurve"
	"spottune/internal/market"
	"spottune/internal/stats"
)

func quickCfg() Config { return Config{Seed: 1, Scale: 0.2} }

func TestSuiteShape(t *testing.T) {
	suite := Suite(quickCfg())
	if len(suite) != 6 {
		t.Fatalf("suite has %d benchmarks, want 6", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		names[b.Name] = true
		if len(b.HPs) != 16 {
			t.Errorf("%s has %d HP settings, want 16 (Table II)", b.Name, len(b.HPs))
		}
		if b.MaxTrialSteps <= 0 || b.ValidateEvery <= 0 {
			t.Errorf("%s has invalid horizon %d/%d", b.Name, b.MaxTrialSteps, b.ValidateEvery)
		}
		if b.MaxTrialSteps%b.ValidateEvery != 0 {
			t.Errorf("%s: ValidateEvery %d does not divide MaxTrialSteps %d",
				b.Name, b.ValidateEvery, b.MaxTrialSteps)
		}
		if b.CheckpointMB <= 0 || b.BaseStepSeconds <= 0 {
			t.Errorf("%s: missing checkpoint size or base speed", b.Name)
		}
		// IDs unique.
		ids := map[string]bool{}
		for _, hp := range b.HPs {
			if ids[hp.ID] {
				t.Errorf("%s: duplicate HP ID %s", b.Name, hp.ID)
			}
			ids[hp.ID] = true
		}
	}
	for _, want := range []string{"LoR", "SVM", "GBTR", "LiR", "AlexNet", "ResNet"} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestSuiteByName(t *testing.T) {
	b, err := SuiteByName("ResNet", quickCfg())
	if err != nil || b.Name != "ResNet" {
		t.Fatalf("SuiteByName = %v, %v", b, err)
	}
	if _, err := SuiteByName("nope", quickCfg()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestInstanceSpeedupNonMonotoneInPrice(t *testing.T) {
	cat := market.DefaultCatalog()
	types := cat.Types()
	// Sort by on-demand price and verify speedup is NOT monotone (Fig 6).
	bySpeed := map[string]float64{}
	for _, it := range types {
		s := InstanceSpeedup(it)
		if s <= 0 {
			t.Fatalf("speedup(%s) = %v", it.Name, s)
		}
		bySpeed[it.Name] = s
	}
	if !(bySpeed["r3.xlarge"] < bySpeed["r4.xlarge"]) {
		t.Error("expected r3.xlarge slower than cheaper r4.xlarge (Fig 6 dip)")
	}
	if !(bySpeed["r4.2xlarge"] < bySpeed["m4.2xlarge"]) {
		t.Error("expected r4.2xlarge slower than cheaper m4.2xlarge (Fig 6 dip)")
	}
	if bySpeed["m4.4xlarge"] <= bySpeed["r4.large"] {
		t.Error("fastest not faster than slowest")
	}
	// Unknown type fallback.
	unk := market.InstanceType{Name: "x9.huge", CPUs: 8, OnDemandPrice: 1}
	if s := InstanceSpeedup(unk); s != 2 {
		t.Errorf("fallback speedup = %v, want 2", s)
	}
}

func TestStepSecondsAndTimeFactors(t *testing.T) {
	b := LoR(quickCfg())
	cat := market.DefaultCatalog()
	ref, _ := cat.Lookup("r4.large")
	fast, _ := cat.Lookup("m4.4xlarge")
	hpBig := b.HPs[0] // bs=128 first in grid
	if hpBig.Num["bs"] != 128 {
		t.Fatalf("unexpected grid order: %+v", hpBig)
	}
	sRef := b.StepSeconds(ref, hpBig.ID)
	sFast := b.StepSeconds(fast, hpBig.ID)
	if sFast >= sRef {
		t.Errorf("faster instance not faster: %v vs %v", sFast, sRef)
	}
	if math.Abs(sRef/sFast-3.6) > 1e-9 {
		t.Errorf("speed ratio %v, want 3.6", sRef/sFast)
	}
	// Batch 128 costs more per step than batch 64.
	var hpSmall HP
	for _, hp := range b.HPs {
		if hp.Num["bs"] == 64 && hp.Num["lr"] == hpBig.Num["lr"] &&
			hp.Num["dr"] == hpBig.Num["dr"] && hp.Num["ds"] == hpBig.Num["ds"] {
			hpSmall = hp
		}
	}
	if b.StepSeconds(ref, hpSmall.ID) >= sRef {
		t.Error("bs=64 not cheaper per step than bs=128")
	}
	// Unknown HP falls back to unit factor.
	if got := b.StepSeconds(ref, "unknown"); got != b.BaseStepSeconds {
		t.Errorf("unknown HP step seconds = %v", got)
	}
}

func TestSVMKernelTimeFactor(t *testing.T) {
	b := SVM(quickCfg())
	var rbf, lin HP
	for _, hp := range b.HPs {
		if hp.Num["bs"] != 64 || hp.Num["lr"] != 1e-2 || hp.Num["dr"] != 1.0 {
			continue
		}
		switch hp.Str["kernel"] {
		case "RBF":
			rbf = hp
		case "Linear":
			lin = hp
		}
	}
	if rbf.ID == "" || lin.ID == "" {
		t.Fatal("kernel HPs not found")
	}
	if b.TimeFactor(rbf) <= b.TimeFactor(lin) {
		t.Error("RBF kernel not slower than linear")
	}
}

func TestRecordCurvesLoR(t *testing.T) {
	b := LoR(quickCfg())
	curves, err := b.RecordCurves()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 16 {
		t.Fatalf("recorded %d curves", len(curves))
	}
	distinctFinals := map[float64]bool{}
	for id, curve := range curves {
		if curve[len(curve)-1].Step != b.MaxTrialSteps {
			t.Errorf("%s curve ends at %d", id, curve[len(curve)-1].Step)
		}
		last := curve[len(curve)-1].Value
		if math.IsNaN(last) || math.IsInf(last, 0) {
			t.Errorf("%s final metric %v", id, last)
		}
		distinctFinals[math.Round(last*1e6)] = true
		// Training should generally improve the metric.
		if last >= curve[0].Value*1.5 {
			t.Errorf("%s metric grew: %v -> %v", id, curve[0].Value, last)
		}
	}
	if len(distinctFinals) < 4 {
		t.Errorf("only %d distinct final metrics across 16 HPs; HPs do not matter", len(distinctFinals))
	}
}

func TestRecordCurvesGBTR(t *testing.T) {
	b := GBTR(quickCfg())
	curves, err := b.RecordCurves()
	if err != nil {
		t.Fatal(err)
	}
	for id, curve := range curves {
		final := curve[len(curve)-1].Value
		if final <= 0 || math.IsNaN(final) {
			t.Errorf("%s final MSE %v", id, final)
		}
	}
}

func TestSyntheticCurvesFastPath(t *testing.T) {
	for _, b := range Suite(quickCfg()) {
		curves := b.SyntheticCurves(3)
		if len(curves) != 16 {
			t.Fatalf("%s: %d synthetic curves", b.Name, len(curves))
		}
		for id, c := range curves {
			if c[len(c)-1].Step != b.MaxTrialSteps {
				t.Fatalf("%s/%s synthetic curve ends at %d", b.Name, id, c[len(c)-1].Step)
			}
			for _, p := range c {
				if p.Value <= 0 || math.IsNaN(p.Value) {
					t.Fatalf("%s/%s has invalid point %+v", b.Name, id, p)
				}
			}
		}
		// Deterministic.
		again := b.SyntheticCurves(3)
		for id := range curves {
			if curves[id][0] != again[id][0] {
				t.Fatalf("%s synthetic curves not deterministic", b.Name)
			}
		}
	}
}

func TestTrialsFromCurves(t *testing.T) {
	b := ResNet(quickCfg())
	curves := b.SyntheticCurves(5)
	trials, err := b.Trials(curves, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 16 {
		t.Fatalf("%d trials", len(trials))
	}
	cat := market.DefaultCatalog()
	ref, _ := cat.Lookup("r4.large")
	tr := trials[0]
	steps, _ := tr.RunFor(ref, 10*float64(tr.MaxSteps())*b.BaseStepSeconds, 0)
	if steps != b.MaxTrialSteps {
		t.Fatalf("trial ran %d steps, want %d", steps, b.MaxTrialSteps)
	}
	// Missing curve errors.
	delete(curves, trials[1].ID())
	if _, err := b.Trials(curves, 7); err == nil {
		t.Fatal("missing curve accepted")
	}
}

func TestPerfModelCOVUnderTenPercent(t *testing.T) {
	// The §IV-A5 claim that justifies online profiling.
	b := AlexNet(quickCfg())
	perf := b.PerfModel(3)
	cat := market.DefaultCatalog()
	it, _ := cat.Lookup("m4.2xlarge")
	var xs []float64
	for step := 0; step < 400; step++ {
		xs = append(xs, perf.StepSeconds(it, b.HPs[0].ID, step))
	}
	if cov := stats.COV(xs); cov >= 0.1 {
		t.Fatalf("per-step time COV %v >= 0.1", cov)
	}
}

func TestResNetCurvesAreTwoStage(t *testing.T) {
	if testing.Short() {
		t.Skip("real training skipped in -short")
	}
	// Record one real ResNet-like config and verify the lr step decay
	// produces a detectable second stage (the Fig. 5b shape).
	b := ResNet(Config{Seed: 2, Scale: 0.5})
	hp := b.HPs[0]
	tr, err := b.NewTrainer(hp)
	if err != nil {
		t.Fatal(err)
	}
	tr.RunSteps(b.MaxTrialSteps)
	curve := tr.Curve()
	if len(curve) < 10 {
		t.Fatalf("curve too short: %d", len(curve))
	}
	vals := make([]float64, len(curve))
	for i, p := range curve {
		vals[i] = p.Value
	}
	// The curve must at least decrease substantially overall.
	if vals[len(vals)-1] >= vals[0]*0.9 {
		t.Errorf("ResNet stand-in did not learn: %v -> %v", vals[0], vals[len(vals)-1])
	}
	_ = earlycurve.DefaultDetector()
}
