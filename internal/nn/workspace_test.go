package nn

import (
	"math/rand/v2"
	"testing"
)

func randSeq(rng *rand.Rand, T, n int) [][]float64 {
	xs := make([][]float64, T)
	for t := range xs {
		xs[t] = make([]float64, n)
		for j := range xs[t] {
			xs[t][j] = 2*rng.Float64() - 1
		}
	}
	return xs
}

// TestForwardSeqWSMatchesPlain: the workspace path must be bit-identical to
// the workspace-free path — same kernels, different memory source.
func TestForwardSeqWSMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := NewStackedLSTM("ws", 5, 7, 2, rng)
	xs := randSeq(rng, 13, 5)
	plain, _ := s.ForwardSeq(xs)
	ws := NewWorkspace()
	for round := 0; round < 3; round++ { // reuse must not corrupt results
		ws.Reset()
		got, _ := s.ForwardSeqWS(ws, xs)
		for st := range plain {
			for j := range plain[st] {
				if got[st][j] != plain[st][j] {
					t.Fatalf("round %d: h[%d][%d] = %v, plain %v", round, st, j, got[st][j], plain[st][j])
				}
			}
		}
	}
}

// TestBackwardSeqWSMatchesPlain: gradients from the workspace path must be
// bit-identical to the workspace-free path.
func TestBackwardSeqWSMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	build := func() *StackedLSTM {
		r := rand.New(rand.NewPCG(7, 7))
		return NewStackedLSTM("bw", 4, 6, 2, r)
	}
	xs := randSeq(rng, 11, 4)
	dLast := make([]float64, 6)
	for j := range dLast {
		dLast[j] = 2*rng.Float64() - 1
	}

	a := build()
	hsA, cacheA := a.ForwardSeq(xs)
	a.BackwardSeq(cacheA, LastHiddenGrad(len(xs), 6, dLast))
	_ = hsA

	b := build()
	ws := NewWorkspace()
	_, cacheB := b.ForwardSeqWS(ws, xs)
	b.BackwardSeqWS(ws, cacheB, LastHiddenGradWS(ws, len(xs), 6, dLast))

	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for k := range pa[i].G {
			if pa[i].G[k] != pb[i].G[k] {
				t.Fatalf("param %s grad[%d]: ws %v, plain %v", pa[i].Name, k, pb[i].G[k], pa[i].G[k])
			}
		}
	}
}

// TestGradShadowAccumulates: backprop through a shadow leaves the real
// gradients untouched until AddGrad folds them in, and the fold reproduces
// direct accumulation bit-for-bit.
func TestGradShadowAccumulates(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	build := func() *StackedLSTM {
		r := rand.New(rand.NewPCG(11, 11))
		return NewStackedLSTM("sh", 3, 5, 2, r)
	}
	xs := randSeq(rng, 9, 3)
	dLast := make([]float64, 5)
	for j := range dLast {
		dLast[j] = 2*rng.Float64() - 1
	}

	direct := build()
	_, c1 := direct.ForwardSeq(xs)
	direct.BackwardSeq(c1, LastHiddenGrad(len(xs), 5, dLast))

	via := build()
	shadow := via.GradShadow()
	if &shadow.Layers[0].Wx.W[0] != &via.Layers[0].Wx.W[0] {
		t.Fatal("shadow does not share weights")
	}
	_, c2 := shadow.ForwardSeq(xs)
	shadow.BackwardSeq(c2, LastHiddenGrad(len(xs), 5, dLast))
	for _, p := range via.Params() {
		for _, g := range p.G {
			if g != 0 {
				t.Fatal("shadow backprop leaked into real gradients")
			}
		}
	}
	sp := shadow.Params()
	for i, p := range via.Params() {
		p.AddGrad(sp[i])
	}
	dp := direct.Params()
	vp := via.Params()
	for i := range dp {
		for k := range dp[i].G {
			if dp[i].G[k] != vp[i].G[k] {
				t.Fatalf("param %s grad[%d]: shadow-folded %v, direct %v", dp[i].Name, k, vp[i].G[k], dp[i].G[k])
			}
		}
	}
}

// TestDenseWSMatchesPlain covers the dense/MLP workspace variants.
func TestDenseWSMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	m := NewMLP("mlp", []int{6, 8, 3}, ReLU, Identity, rng)
	x := make([]float64, 6)
	for i := range x {
		x[i] = 2*rng.Float64() - 1
	}
	yPlain, cPlain := m.Forward(x)
	ws := NewWorkspace()
	yWS, cWS := m.ForwardWS(ws, x)
	for i := range yPlain {
		if yPlain[i] != yWS[i] {
			t.Fatalf("y[%d]: %v vs %v", i, yWS[i], yPlain[i])
		}
	}
	dy := []float64{0.3, -0.2, 0.9}
	dxPlain := m.Backward(cPlain, dy)
	gPlain := make([][]float64, 0)
	for _, p := range m.Params() {
		gPlain = append(gPlain, append([]float64(nil), p.G...))
		p.ZeroGrad()
	}
	dxWS := m.BackwardWS(ws, cWS, dy)
	for i := range dxPlain {
		if dxPlain[i] != dxWS[i] {
			t.Fatalf("dx[%d]: %v vs %v", i, dxWS[i], dxPlain[i])
		}
	}
	for pi, p := range m.Params() {
		for k := range p.G {
			if p.G[k] != gPlain[pi][k] {
				t.Fatalf("param %s grad[%d]: %v vs %v", p.Name, k, p.G[k], gPlain[pi][k])
			}
		}
	}
}
