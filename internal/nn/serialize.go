package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the on-wire form of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	W          []float64
}

// Save writes all parameters to w in gob format, keyed by name. Gradients
// and optimizer state are not persisted — saved models are for inference.
func Save(w io.Writer, params []*Param) error {
	blobs := make([]paramBlob, 0, len(params))
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		blobs = append(blobs, paramBlob{Name: p.Name, Rows: p.Rows, Cols: p.Cols, W: p.W})
	}
	return gob.NewEncoder(w).Encode(blobs)
}

// Load restores parameter values by name into params. Every parameter must
// be present in the stream with matching shape.
func Load(r io.Reader, params []*Param) error {
	var blobs []paramBlob
	if err := gob.NewDecoder(r).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decoding model: %w", err)
	}
	byName := make(map[string]paramBlob, len(blobs))
	for _, b := range blobs {
		byName[b.Name] = b
	}
	for _, p := range params {
		b, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: parameter %q missing from saved model", p.Name)
		}
		if b.Rows != p.Rows || b.Cols != p.Cols || len(b.W) != len(p.W) {
			return fmt.Errorf("nn: parameter %q: saved %dx%d vs live %dx%d: %w",
				p.Name, b.Rows, b.Cols, p.Rows, p.Cols, ErrShape)
		}
		copy(p.W, b.W)
	}
	return nil
}

// SaveBytes is Save into a fresh buffer.
func SaveBytes(params []*Param) ([]byte, error) {
	var buf bytes.Buffer
	if err := Save(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadBytes is Load from a byte slice.
func LoadBytes(data []byte, params []*Param) error {
	return Load(bytes.NewReader(data), params)
}
