package nn

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

func newRng() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestParamInit(t *testing.T) {
	p := NewParam("w", 4, 3)
	if len(p.W) != 12 || len(p.G) != 12 {
		t.Fatal("wrong storage size")
	}
	p.InitXavier(newRng())
	anyNonZero := false
	limit := math.Sqrt(6.0 / 7.0)
	for _, w := range p.W {
		if w != 0 {
			anyNonZero = true
		}
		if math.Abs(w) > limit {
			t.Fatalf("weight %v exceeds Xavier limit %v", w, limit)
		}
	}
	if !anyNonZero {
		t.Fatal("InitXavier left all weights zero")
	}
	p.G[0] = 5
	p.ZeroGrad()
	if p.G[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestActivations(t *testing.T) {
	tests := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Identity, -3, -3},
		{ReLU, -3, 0},
		{ReLU, 3, 3},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, tt := range tests {
		if got := tt.act.apply(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("act(%v)(%v) = %v, want %v", tt.act, tt.x, got, tt.want)
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	if got := Logistic(1000); got != 1 {
		t.Errorf("Logistic(1000) = %v", got)
	}
	if got := Logistic(-1000); got != 0 {
		t.Errorf("Logistic(-1000) = %v", got)
	}
	if math.IsNaN(Logistic(-745)) || math.IsNaN(Logistic(745)) {
		t.Error("Logistic overflow produced NaN")
	}
}

func TestDenseForwardShape(t *testing.T) {
	d := NewDense("d", 3, 2, Identity, newRng())
	y, _ := d.Forward([]float64{1, 2, 3})
	if len(y) != 2 {
		t.Fatalf("output len %d, want 2", len(y))
	}
}

func TestDenseForwardKnownWeights(t *testing.T) {
	d := NewDense("d", 2, 1, Identity, newRng())
	copy(d.W.W, []float64{2, 3})
	d.B.W[0] = 1
	y, _ := d.Forward([]float64{4, 5})
	if want := 2.0*4 + 3*5 + 1; y[0] != want {
		t.Fatalf("dense output %v, want %v", y[0], want)
	}
}

// numericGrad computes d loss/d w[i] by central differences.
func numericGrad(loss func() float64, w []float64, i int) float64 {
	const h = 1e-6
	orig := w[i]
	w[i] = orig + h
	lp := loss()
	w[i] = orig - h
	lm := loss()
	w[i] = orig
	return (lp - lm) / (2 * h)
}

func checkParamGrads(t *testing.T, name string, params []*Param, loss func() float64, tol float64) {
	t.Helper()
	for _, p := range params {
		for i := range p.W {
			want := numericGrad(loss, p.W, i)
			got := p.G[i]
			scale := math.Max(math.Abs(want), 1)
			if math.Abs(got-want) > tol*scale {
				t.Errorf("%s %s[%d]: analytic %v vs numeric %v", name, p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	for _, act := range []Activation{Identity, ReLU, Tanh, Sigmoid} {
		d := NewDense("d", 3, 2, act, newRng())
		x := []float64{0.5, -0.3, 0.8}
		target := []float64{0.2, -0.1}
		loss := func() float64 {
			y, _ := d.Forward(x)
			s := 0.0
			for i := range y {
				diff := y[i] - target[i]
				s += 0.5 * diff * diff
			}
			return s
		}
		y, cache := d.Forward(x)
		dy := make([]float64, len(y))
		for i := range y {
			dy[i] = y[i] - target[i]
		}
		ZeroGrads(d.Params())
		d.Backward(cache, dy)
		checkParamGrads(t, "dense", d.Params(), loss, 1e-5)
	}
}

func TestDenseInputGradCheck(t *testing.T) {
	d := NewDense("d", 3, 2, Tanh, newRng())
	x := []float64{0.5, -0.3, 0.8}
	loss := func() float64 {
		y, _ := d.Forward(x)
		s := 0.0
		for _, v := range y {
			s += 0.5 * v * v
		}
		return s
	}
	y, cache := d.Forward(x)
	ZeroGrads(d.Params())
	dx := d.Backward(cache, y)
	for i := range x {
		want := numericGrad(loss, x, i)
		if math.Abs(dx[i]-want) > 1e-5 {
			t.Errorf("dx[%d] analytic %v vs numeric %v", i, dx[i], want)
		}
	}
}

func TestMLPGradCheck(t *testing.T) {
	m := NewMLP("m", []int{4, 5, 3, 1}, Tanh, Identity, newRng())
	x := []float64{0.1, -0.2, 0.3, 0.4}
	loss := func() float64 {
		y, _ := m.Forward(x)
		return 0.5 * y[0] * y[0]
	}
	y, cache := m.Forward(x)
	ZeroGrads(m.Params())
	m.Backward(cache, []float64{y[0]})
	checkParamGrads(t, "mlp", m.Params(), loss, 1e-5)
}

func TestLSTMForwardShapes(t *testing.T) {
	l := NewLSTM("l", 3, 4, newRng())
	xs := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	hs, _ := l.ForwardSeq(xs)
	if len(hs) != 3 {
		t.Fatalf("got %d hidden outputs, want 3", len(hs))
	}
	for _, h := range hs {
		if len(h) != 4 {
			t.Fatalf("hidden size %d, want 4", len(h))
		}
	}
}

func TestLSTMForgetGateBias(t *testing.T) {
	l := NewLSTM("l", 2, 3, newRng())
	for h := 0; h < 3; h++ {
		if l.B.W[3+h] != 1 {
			t.Fatalf("forget bias not initialized to 1")
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	l := NewLSTM("l", 2, 3, newRng())
	xs := [][]float64{{0.5, -0.1}, {0.2, 0.7}, {-0.4, 0.3}, {0.1, 0.1}}
	loss := func() float64 {
		hs, _ := l.ForwardSeq(xs)
		last := hs[len(hs)-1]
		s := 0.0
		for _, v := range last {
			s += 0.5 * v * v
		}
		return s
	}
	hs, cache := l.ForwardSeq(xs)
	last := hs[len(hs)-1]
	ZeroGrads(l.Params())
	l.BackwardSeq(cache, LastHiddenGrad(len(xs), 3, last))
	checkParamGrads(t, "lstm", l.Params(), loss, 1e-4)
}

func TestLSTMAllStepGradCheck(t *testing.T) {
	// Gradient flowing from every timestep, not just the last.
	l := NewLSTM("l", 2, 2, newRng())
	xs := [][]float64{{0.3, -0.2}, {0.1, 0.4}, {-0.5, 0.2}}
	loss := func() float64 {
		hs, _ := l.ForwardSeq(xs)
		s := 0.0
		for _, h := range hs {
			for _, v := range h {
				s += 0.5 * v * v
			}
		}
		return s
	}
	hs, cache := l.ForwardSeq(xs)
	dhs := make([][]float64, len(xs))
	for t0, h := range hs {
		dhs[t0] = append([]float64(nil), h...)
	}
	ZeroGrads(l.Params())
	l.BackwardSeq(cache, dhs)
	checkParamGrads(t, "lstm-all", l.Params(), loss, 1e-4)
}

func TestLSTMInputGradCheck(t *testing.T) {
	l := NewLSTM("l", 2, 3, newRng())
	flat := []float64{0.5, -0.1, 0.2, 0.7}
	rebuild := func() [][]float64 {
		return [][]float64{{flat[0], flat[1]}, {flat[2], flat[3]}}
	}
	loss := func() float64 {
		hs, _ := l.ForwardSeq(rebuild())
		last := hs[len(hs)-1]
		s := 0.0
		for _, v := range last {
			s += 0.5 * v * v
		}
		return s
	}
	hs, cache := l.ForwardSeq(rebuild())
	last := hs[len(hs)-1]
	ZeroGrads(l.Params())
	dxs := l.BackwardSeq(cache, LastHiddenGrad(2, 3, last))
	got := []float64{dxs[0][0], dxs[0][1], dxs[1][0], dxs[1][1]}
	for i := range flat {
		want := numericGrad(loss, flat, i)
		if math.Abs(got[i]-want) > 1e-5 {
			t.Errorf("dx[%d] analytic %v vs numeric %v", i, got[i], want)
		}
	}
}

func TestStackedLSTMGradCheck(t *testing.T) {
	s := NewStackedLSTM("s", 2, 3, 3, newRng())
	if len(s.Layers) != 3 {
		t.Fatalf("stack depth %d, want 3", len(s.Layers))
	}
	xs := [][]float64{{0.5, -0.1}, {0.2, 0.7}, {-0.3, 0.4}}
	loss := func() float64 {
		hs, _ := s.ForwardSeq(xs)
		last := hs[len(hs)-1]
		sum := 0.0
		for _, v := range last {
			sum += 0.5 * v * v
		}
		return sum
	}
	hs, cache := s.ForwardSeq(xs)
	last := hs[len(hs)-1]
	ZeroGrads(s.Params())
	s.BackwardSeq(cache, LastHiddenGrad(len(xs), 3, last))
	checkParamGrads(t, "stacked", s.Params(), loss, 1e-4)
}

func TestWeightedBCELossAndGrad(t *testing.T) {
	w := WeightedBCE{PosWeight: 2, NegWeight: 0.5}
	z := 0.3
	// Numeric check of dz for both labels.
	for _, y := range []bool{true, false} {
		loss := func(z float64) float64 {
			l, _ := w.Loss(z, y)
			return l
		}
		_, dz := w.Loss(z, y)
		h := 1e-6
		want := (loss(z+h) - loss(z-h)) / (2 * h)
		if math.Abs(dz-want) > 1e-5 {
			t.Errorf("label %v: dz analytic %v vs numeric %v", y, dz, want)
		}
	}
	// Weighted: positive-label loss at p=0.5 should be 2x the unweighted.
	lp, _ := w.Loss(0, true)
	if math.Abs(lp-2*math.Log(2)) > 1e-9 {
		t.Errorf("weighted positive loss %v, want %v", lp, 2*math.Log(2))
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 1, 4)
	copy(p.G, []float64{3, 4, 0, 0}) // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	post := math.Hypot(p.G[0], p.G[1])
	if math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", post)
	}
	// Below threshold: untouched.
	copy(p.G, []float64{0.3, 0.4, 0, 0})
	ClipGradNorm([]*Param{p}, 1)
	if p.G[0] != 0.3 {
		t.Fatal("clip modified a small gradient")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Fit y = 2x with a linear model via Adam.
	d := NewDense("d", 1, 1, Identity, newRng())
	opt := NewAdam(0.05)
	rng := newRng()
	lossAt := func() float64 {
		total := 0.0
		for i := 0; i < 16; i++ {
			x := float64(i)/8 - 1
			y, _ := d.Forward([]float64{x})
			diff := y[0] - 2*x
			total += 0.5 * diff * diff
		}
		return total
	}
	before := lossAt()
	for epoch := 0; epoch < 200; epoch++ {
		ZeroGrads(d.Params())
		for i := 0; i < 16; i++ {
			x := rng.Float64()*2 - 1
			y, cache := d.Forward([]float64{x})
			d.Backward(cache, []float64{y[0] - 2*x})
		}
		opt.Step(d.Params())
	}
	after := lossAt()
	if after >= before/10 {
		t.Fatalf("Adam failed to reduce loss: %v -> %v", before, after)
	}
	if math.Abs(d.W.W[0]-2) > 0.1 {
		t.Errorf("learned weight %v, want ~2", d.W.W[0])
	}
}

func TestSGDReducesLoss(t *testing.T) {
	d := NewDense("d", 1, 1, Identity, newRng())
	opt := NewSGD(0.05, 0.9)
	for epoch := 0; epoch < 100; epoch++ {
		ZeroGrads(d.Params())
		for i := 0; i < 8; i++ {
			x := float64(i)/4 - 1
			y, cache := d.Forward([]float64{x})
			d.Backward(cache, []float64{(y[0] - 3*x) / 8})
		}
		opt.Step(d.Params())
	}
	if math.Abs(d.W.W[0]-3) > 0.2 {
		t.Errorf("SGD learned weight %v, want ~3", d.W.W[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewMLP("m", []int{3, 4, 2}, ReLU, Identity, newRng())
	var buf bytes.Buffer
	if err := Save(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP("m", []int{3, 4, 2}, ReLU, Identity, rand.New(rand.NewPCG(9, 9)))
	if err := Load(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	y1, _ := m.Forward(x)
	y2, _ := m2.Forward(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded model diverges: %v vs %v", y1, y2)
		}
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	m := NewMLP("m", []int{3, 4, 2}, ReLU, Identity, newRng())
	blob, err := SaveBytes(m.Params())
	if err != nil {
		t.Fatal(err)
	}
	other := NewMLP("m", []int{3, 5, 2}, ReLU, Identity, newRng())
	if err := LoadBytes(blob, other.Params()); err == nil {
		t.Fatal("shape mismatch not detected")
	}
	missing := NewMLP("x", []int{3, 4, 2}, ReLU, Identity, newRng())
	if err := LoadBytes(blob, missing.Params()); err == nil {
		t.Fatal("missing parameter not detected")
	}
}

func TestSaveDuplicateNames(t *testing.T) {
	p1 := NewParam("same", 1, 1)
	p2 := NewParam("same", 1, 1)
	var buf bytes.Buffer
	if err := Save(&buf, []*Param{p1, p2}); err == nil {
		t.Fatal("duplicate names not rejected")
	}
}

func TestLSTMLearnsToggle(t *testing.T) {
	// Sanity: an LSTM can learn "output sign of the sum of inputs seen".
	rng := newRng()
	l := NewLSTM("l", 1, 8, rng)
	head := NewDense("h", 8, 1, Identity, rng)
	params := append(l.Params(), head.Params()...)
	opt := NewAdam(0.02)
	bce := WeightedBCE{PosWeight: 1, NegWeight: 1}

	sample := func() ([][]float64, bool) {
		T := 4 + rng.IntN(4)
		xs := make([][]float64, T)
		sum := 0.0
		for t0 := range xs {
			v := rng.Float64()*2 - 1
			xs[t0] = []float64{v}
			sum += v
		}
		return xs, sum > 0
	}
	var lastAvg float64
	for epoch := 0; epoch < 30; epoch++ {
		total := 0.0
		ZeroGrads(params)
		const batch = 32
		for b := 0; b < batch; b++ {
			xs, label := sample()
			hs, cache := l.ForwardSeq(xs)
			z, hc := head.Forward(hs[len(hs)-1])
			loss, dz := bce.Loss(z[0], label)
			total += loss
			dh := head.Backward(hc, []float64{dz / batch})
			l.BackwardSeq(cache, LastHiddenGrad(len(xs), 8, dh))
		}
		ClipGradNorm(params, 5)
		opt.Step(params)
		lastAvg = total / 32
	}
	if lastAvg > 0.55 {
		t.Errorf("LSTM failed to learn toggle task: avg loss %v", lastAvg)
	}
}
