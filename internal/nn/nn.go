// Package nn is a small, dependency-free neural-network library: dense
// layers, stacked LSTMs with backpropagation through time, the Adam
// optimizer, weighted binary cross-entropy, global-norm gradient clipping,
// and gob serialization.
//
// It exists to implement RevPred (§III-B of the SpotTune paper): a three-tier
// LSTM over 59 history price records plus a three-layer fully connected
// branch over the present record. The paper builds this in a DL framework;
// this package is the stdlib-only substrate. All layers are gradient-checked
// in tests.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"spottune/internal/kernels"
)

// Param is one trainable tensor (flattened row-major) with its gradient
// accumulator.
type Param struct {
	Name       string
	Rows, Cols int
	W          []float64
	G          []float64
}

// NewParam allocates a zeroed rows×cols parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Rows: rows,
		Cols: cols,
		W:    make([]float64, rows*cols),
		G:    make([]float64, rows*cols),
	}
}

// InitXavier fills W with Glorot-uniform values scaled by fan-in/fan-out.
func (p *Param) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(p.Rows+p.Cols))
	for i := range p.W {
		p.W[i] = (2*rng.Float64() - 1) * limit
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// GradShadow returns a Param that shares this parameter's weights but owns
// a private, zeroed gradient buffer. Parallel mini-batch workers accumulate
// into shadows; AddGrad folds the shards back in deterministic order.
func (p *Param) GradShadow() *Param {
	return &Param{Name: p.Name, Rows: p.Rows, Cols: p.Cols, W: p.W, G: make([]float64, len(p.W))}
}

// AddGrad accumulates another parameter's gradient buffer into this one.
func (p *Param) AddGrad(src *Param) {
	kernels.Axpy(p.G, 1, src.G)
}

// At returns W[r][c].
func (p *Param) At(r, c int) float64 { return p.W[r*p.Cols+c] }

// Layer is anything owning trainable parameters.
type Layer interface {
	Params() []*Param
}

// Activation selects a dense-layer nonlinearity.
type Activation int

// Supported activations. Identity must stay first so the zero value is a
// plain linear layer.
const (
	Identity Activation = iota
	ReLU
	Tanh
	Sigmoid
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return sigmoid(x)
	default:
		return x
	}
}

// derivFromOutput returns dy/dx given y = act(x), using the output-side form
// so caches only store outputs.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// sigmoid is the numerically stable logistic, shaped for inlining: one Exp
// call site keeps it under the inliner budget, which matters because the
// LSTM gate loop calls it three times per hidden unit per timestep. For
// x < 0 it computes 1 − 1/(1+e^x) instead of the algebraically identical
// e^x/(1+e^x); the two differ by at most 1 ulp until e^x underflows the
// subtraction (|x| ≳ 36, where both sides are saturated anyway).
func sigmoid(x float64) float64 {
	e := math.Exp(-math.Abs(x))
	s := 1 / (1 + e)
	if x < 0 {
		s = 1 - s
	}
	return s
}

// Dense is a fully connected layer y = act(W·x + b).
type Dense struct {
	In, Out int
	W       *Param // Out × In
	B       *Param // Out × 1
	Act     Activation
}

var _ Layer = (*Dense)(nil)

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", out, in),
		B:   NewParam(name+".b", out, 1),
		Act: act,
	}
	d.W.InitXavier(rng)
	return d
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// GradShadow returns a weight-sharing copy of the layer with private
// gradient accumulators (see Param.GradShadow).
func (d *Dense) GradShadow() *Dense {
	return &Dense{In: d.In, Out: d.Out, W: d.W.GradShadow(), B: d.B.GradShadow(), Act: d.Act}
}

// DenseCache stores what Backward needs. The input is borrowed, not copied:
// callers must not mutate x between Forward and Backward.
type DenseCache struct {
	x []float64 // input (borrowed)
	y []float64 // post-activation output
}

// Forward computes y = act(W·x + b).
func (d *Dense) Forward(x []float64) ([]float64, *DenseCache) {
	return d.ForwardWS(nil, x)
}

// ForwardWS is Forward over the given workspace; y is carved from ws. Each
// output accumulates bias first, then the input terms in
// kernels.MatVecAcc's documented pairwise order — deterministic and
// platform-independent (see DESIGN.md, "Kernels layer").
func (d *Dense) ForwardWS(ws *Workspace, x []float64) ([]float64, *DenseCache) {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense %s expects input %d, got %d", d.W.Name, d.In, len(x)))
	}
	y := ws.take(d.Out)
	copy(y, d.B.W)
	kernels.MatVecAcc(y, d.W.W, d.Out, d.In, x)
	if d.Act != Identity {
		for o, v := range y {
			y[o] = d.Act.apply(v)
		}
	}
	return y, &DenseCache{x: x, y: y}
}

// ForwardInferWS is ForwardWS without the backward cache — the inference
// path for hot loops that never train. Same kernels in the same order, so
// the output is bit-identical to ForwardWS; the only difference is that no
// per-call cache header reaches the heap.
func (d *Dense) ForwardInferWS(ws *Workspace, x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense %s expects input %d, got %d", d.W.Name, d.In, len(x)))
	}
	y := ws.take(d.Out)
	copy(y, d.B.W)
	kernels.MatVecAcc(y, d.W.W, d.Out, d.In, x)
	if d.Act != Identity {
		for o, v := range y {
			y[o] = d.Act.apply(v)
		}
	}
	return y
}

// Backward accumulates parameter gradients for upstream gradient dy and
// returns the gradient w.r.t. the input.
func (d *Dense) Backward(cache *DenseCache, dy []float64) []float64 {
	return d.BackwardWS(nil, cache, dy)
}

// BackwardWS is Backward over the given workspace. The accumulation order
// into dx is unchanged from the pre-kernel implementation (per output row,
// ascending input index).
func (d *Dense) BackwardWS(ws *Workspace, cache *DenseCache, dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: dense %s backward expects grad %d, got %d", d.W.Name, d.Out, len(dy)))
	}
	dx := ws.take(d.In)
	for o := 0; o < d.Out; o++ {
		dz := dy[o] * d.Act.derivFromOutput(cache.y[o])
		d.B.G[o] += dz
		kernels.Axpy(d.W.G[o*d.In:(o+1)*d.In], dz, cache.x)
		kernels.Axpy(dx, dz, d.W.W[o*d.In:(o+1)*d.In])
	}
	return dx
}

// MLP is a stack of dense layers applied in order.
type MLP struct {
	Layers []*Dense
}

var _ Layer = (*MLP)(nil)

// NewMLP builds len(sizes)-1 dense layers; hidden layers use hiddenAct and
// the final layer uses finalAct.
func NewMLP(name string, sizes []int, hiddenAct, finalAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = finalAct
		}
		m.Layers = append(m.Layers, NewDense(
			fmt.Sprintf("%s.%d", name, i), sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// Params implements Layer.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// GradShadow returns a weight-sharing copy of the MLP with private gradient
// accumulators (see Param.GradShadow).
func (m *MLP) GradShadow() *MLP {
	out := &MLP{Layers: make([]*Dense, len(m.Layers))}
	for i, l := range m.Layers {
		out.Layers[i] = l.GradShadow()
	}
	return out
}

// MLPCache chains per-layer caches.
type MLPCache struct {
	caches []*DenseCache
}

// Forward applies every layer in order.
func (m *MLP) Forward(x []float64) ([]float64, *MLPCache) {
	return m.ForwardWS(nil, x)
}

// ForwardWS applies every layer in order over the given workspace.
func (m *MLP) ForwardWS(ws *Workspace, x []float64) ([]float64, *MLPCache) {
	c := &MLPCache{caches: make([]*DenseCache, 0, len(m.Layers))}
	for _, l := range m.Layers {
		var dc *DenseCache
		x, dc = l.ForwardWS(ws, x)
		c.caches = append(c.caches, dc)
	}
	return x, c
}

// ForwardInferWS applies every layer through the cache-free inference path;
// bit-identical to ForwardWS (see Dense.ForwardInferWS).
func (m *MLP) ForwardInferWS(ws *Workspace, x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.ForwardInferWS(ws, x)
	}
	return x
}

// Backward walks the layers in reverse, accumulating gradients.
func (m *MLP) Backward(cache *MLPCache, dy []float64) []float64 {
	return m.BackwardWS(nil, cache, dy)
}

// BackwardWS walks the layers in reverse over the given workspace.
func (m *MLP) BackwardWS(ws *Workspace, cache *MLPCache, dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].BackwardWS(ws, cache.caches[i], dy)
	}
	return dy
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}

// ZeroGrads clears every parameter's gradient.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2014), the optimizer the
// paper uses for its neural workloads (Table II).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with standard defaults for unset fields.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		m:       make(map[*Param][]float64),
		v:       make(map[*Param][]float64),
	}
}

// Step applies one Adam update to every parameter using its accumulated
// gradient, then leaves gradients untouched (callers zero them).
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.W))
			a.v[p] = v
		}
		for i, g := range p.G {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum, used by
// the classical trainers in mltrain.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param][]float64)}
}

// Step applies one SGD update using accumulated gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		vel, ok := s.vel[p]
		if !ok {
			vel = make([]float64, len(p.W))
			s.vel[p] = vel
		}
		for i, g := range p.G {
			vel[i] = s.Momentum*vel[i] - s.LR*g
			p.W[i] += vel[i]
		}
	}
}

// WeightedBCE is binary cross-entropy over a logit with per-class weights —
// the data-imbalance counterweight of §III-B (positive weight φ−, negative
// weight φ+).
type WeightedBCE struct {
	PosWeight float64
	NegWeight float64
}

// Loss returns the weighted BCE for a logit z against label y∈{0,1} and the
// gradient dL/dz. The sigmoid is folded in for numerical stability.
func (w WeightedBCE) Loss(z float64, y bool) (loss, dz float64) {
	p := sigmoid(z)
	const eps = 1e-12
	if y {
		loss = -w.PosWeight * math.Log(p+eps)
		dz = w.PosWeight * (p - 1)
		return loss, dz
	}
	loss = -w.NegWeight * math.Log(1-p+eps)
	dz = w.NegWeight * p
	return loss, dz
}

// Logistic exposes the numerically stable logistic (sigmoid) function.
func Logistic(x float64) float64 { return sigmoid(x) }

// ErrShape reports incompatible tensor shapes during (de)serialization.
var ErrShape = errors.New("nn: shape mismatch")
