package nn

import (
	"math/rand/v2"
	"testing"
)

// TestLSTMStepAllocBudget is the tier-1 allocation guard for the BPTT hot
// path: one forward/backward step of the RevPred-shaped stack through a
// reused workspace must stay within a small fixed budget (the pre-kernels
// implementation allocated ~2600 times per step; the workspace path
// allocates a handful of cache headers). A regression here silently taxes
// every campaign, so it fails loudly.
func TestLSTMStepAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	l := NewStackedLSTM("alloc", 6, 24, 3, rng)
	xs := randSeq(rng, 59, 6)
	ws := NewWorkspace()
	// Warm the workspace so arena growth is not billed to the steady state.
	for i := 0; i < 3; i++ {
		ws.Reset()
		hs, cache := l.ForwardSeqWS(ws, xs)
		l.BackwardSeqWS(ws, cache, LastHiddenGradWS(ws, 59, 24, hs[58]))
	}
	avg := testing.AllocsPerRun(50, func() {
		ws.Reset()
		hs, cache := l.ForwardSeqWS(ws, xs)
		l.BackwardSeqWS(ws, cache, LastHiddenGradWS(ws, 59, 24, hs[58]))
	})
	const budget = 16 // measured ~5; old implementation: ~2600
	if avg > budget {
		t.Errorf("LSTM forward/backward step allocates %.1f times, budget %d", avg, budget)
	}
}
