package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"spottune/internal/kernels"
)

// LSTM is a single LSTM layer. Gates are stacked in the order
// input (i), forget (f), candidate (g), output (o), so Wx is (4H × In),
// Wh is (4H × H) and B is (4H × 1).
type LSTM struct {
	In, Hidden int
	Wx         *Param
	Wh         *Param
	B          *Param
}

var _ Layer = (*LSTM)(nil)

// NewLSTM builds an LSTM layer with Xavier-initialized weights and the
// customary +1 forget-gate bias (helps gradient flow early in training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(name+".Wx", 4*hidden, in),
		Wh:     NewParam(name+".Wh", 4*hidden, hidden),
		B:      NewParam(name+".b", 4*hidden, 1),
	}
	l.Wx.InitXavier(rng)
	l.Wh.InitXavier(rng)
	for h := 0; h < hidden; h++ {
		l.B.W[hidden+h] = 1 // forget gate bias
	}
	return l
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// GradShadow returns a view of the layer that shares its weights but owns a
// private gradient accumulator — the unit of parallel mini-batch training:
// each worker backpropagates into its own shadow, and the shards are summed
// into the real gradients in deterministic shard order.
func (l *LSTM) GradShadow() *LSTM {
	return &LSTM{In: l.In, Hidden: l.Hidden, Wx: l.Wx.GradShadow(), Wh: l.Wh.GradShadow(), B: l.B.GradShadow()}
}

// LSTMCache holds the unrolled forward pass in flat row-major buffers:
// gate activations (4H per step, i/f/g/o stacked), cell and hidden states
// (H per step), plus borrowed references to the input steps. Slices are
// carved from the forward call's workspace and stay valid until its Reset.
type LSTMCache struct {
	t     int
	xs    [][]float64 // borrowed input views; callers must not mutate before backward
	gates []float64   // t × 4H post-activation gate values
	c, h  []float64   // t × H post-step cell / hidden states
	tanhC []float64   // t × H tanh(c), saved so backward skips the recompute
}

// ForwardSeq runs the layer over a sequence, starting from zero state, and
// returns the hidden state at every step. Equivalent to ForwardSeqWS with a
// private scratch allocation per call.
func (l *LSTM) ForwardSeq(xs [][]float64) ([][]float64, *LSTMCache) {
	return l.ForwardSeqWS(nil, xs)
}

// ForwardSeqWS is ForwardSeq with an explicit workspace: all transient
// buffers (and the returned hidden views) are carved from ws and remain
// valid until ws.Reset. Each gate row accumulates bias, then input terms,
// then hidden terms; within each term group the sum follows
// kernels.MatVecAcc's documented pairwise order, so outputs are
// deterministic and identical across platforms (and between the WS and
// plain paths), though not bit-identical to the pre-kernels scalar code —
// see DESIGN.md, "Kernels layer".
func (l *LSTM) ForwardSeqWS(ws *Workspace, xs [][]float64) ([][]float64, *LSTMCache) {
	T := len(xs)
	H := l.Hidden
	cache := &LSTMCache{
		t:     T,
		xs:    xs,
		gates: ws.takeRaw(T * 4 * H),
		c:     ws.takeRaw(T * H),
		h:     ws.takeRaw(T * H),
		tanhC: ws.takeRaw(T * H),
	}
	outs := ws.takeRows(T)
	hPrev := ws.take(H) // zero initial state
	cPrev := ws.take(H)
	for t, x := range xs {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: lstm %s expects input %d, got %d at step %d", l.Wx.Name, l.In, len(x), t))
		}
		// Pre-activations z = B + Wx·x + Wh·hPrev: bias first, then the
		// input projection, then the recurrent term (pairwise row sums
		// inside each MatVecAcc).
		z := cache.gates[t*4*H : (t+1)*4*H]
		copy(z, l.B.W)
		kernels.MatVecAcc(z, l.Wx.W, 4*H, l.In, x)
		kernels.MatVecAcc(z, l.Wh.W, 4*H, H, hPrev)
		c := cache.c[t*H : (t+1)*H]
		h := cache.h[t*H : (t+1)*H]
		tc := cache.tanhC[t*H : (t+1)*H]
		for j := 0; j < H; j++ {
			i := sigmoid(z[j])
			f := sigmoid(z[H+j])
			g := math.Tanh(z[2*H+j])
			o := sigmoid(z[3*H+j])
			z[j], z[H+j], z[2*H+j], z[3*H+j] = i, f, g, o
			c[j] = f*cPrev[j] + i*g
			tc[j] = math.Tanh(c[j])
			h[j] = o * tc[j]
		}
		outs[t] = h
		hPrev, cPrev = h, c
	}
	return outs, cache
}

// ForwardSeqInferWS is ForwardSeqWS without the backward cache: identical
// arithmetic in identical order (bit-identical hidden outputs), but no
// per-call cache header reaches the heap. Gate pre-activations reuse one
// per-step buffer since backward never revisits them.
func (l *LSTM) ForwardSeqInferWS(ws *Workspace, xs [][]float64) [][]float64 {
	T := len(xs)
	H := l.Hidden
	z := ws.takeRaw(4 * H)
	cs := ws.takeRaw(T * H)
	hs := ws.takeRaw(T * H)
	outs := ws.takeRows(T)
	hPrev := ws.take(H) // zero initial state
	cPrev := ws.take(H)
	for t, x := range xs {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: lstm %s expects input %d, got %d at step %d", l.Wx.Name, l.In, len(x), t))
		}
		copy(z, l.B.W)
		kernels.MatVecAcc(z, l.Wx.W, 4*H, l.In, x)
		kernels.MatVecAcc(z, l.Wh.W, 4*H, H, hPrev)
		c := cs[t*H : (t+1)*H]
		h := hs[t*H : (t+1)*H]
		for j := 0; j < H; j++ {
			i := sigmoid(z[j])
			f := sigmoid(z[H+j])
			g := math.Tanh(z[2*H+j])
			o := sigmoid(z[3*H+j])
			c[j] = f*cPrev[j] + i*g
			h[j] = o * math.Tanh(c[j])
		}
		outs[t] = h
		hPrev, cPrev = h, c
	}
	return outs
}

// BackwardSeq backpropagates through time; see BackwardSeqWS.
func (l *LSTM) BackwardSeq(cache *LSTMCache, dhs [][]float64) [][]float64 {
	return l.BackwardSeqWS(nil, cache, dhs)
}

// BackwardSeqWS backpropagates through time using the given workspace for
// every transient buffer. dhs must contain one gradient per timestep's
// hidden output (nil entries are allowed and cheap). Parameter gradients
// accumulate into the layer's Params; the returned slices are the gradients
// w.r.t. each input step.
//
// Input/hidden gradients (dx, dhPrev) accumulate in ascending gate-row
// order via the transpose kernels, whereas the pre-kernel code grouped the
// four gate contributions per hidden unit. The sums are mathematically
// identical but may differ in final ulps; every consumer (gradient checks,
// trained-model tests, campaign goldens) asserts through tolerances or
// properties, never on gradient bit patterns. Parameter gradients touch
// each element exactly once, so their values are order-independent.
func (l *LSTM) BackwardSeqWS(ws *Workspace, cache *LSTMCache, dhs [][]float64) [][]float64 {
	T := cache.t
	if len(dhs) != T {
		panic(fmt.Sprintf("nn: lstm backward got %d grads for %d steps", len(dhs), T))
	}
	H := l.Hidden
	dxsFlat := ws.take(T * l.In)
	dxs := ws.takeRows(T)
	dhNext := ws.take(H)
	dcNext := ws.take(H)
	dhPrev := ws.take(H)
	dcPrev := ws.take(H)
	dz := ws.takeRaw(4 * H)
	zeroH := ws.take(H)
	for t := T - 1; t >= 0; t-- {
		gates := cache.gates[t*4*H : (t+1)*4*H]
		tcs := cache.tanhC[t*H : (t+1)*H]
		cPrev, hPrev := zeroH, zeroH
		if t > 0 {
			cPrev = cache.c[(t-1)*H : t*H]
			hPrev = cache.h[(t-1)*H : t*H]
		}
		dht := dhs[t]
		for j := 0; j < H; j++ {
			dh := dhNext[j]
			if dht != nil {
				dh += dht[j]
			}
			i, f, g, o := gates[j], gates[H+j], gates[2*H+j], gates[3*H+j]
			tanhC := tcs[j]
			do := dh * tanhC
			dc := dh*o*(1-tanhC*tanhC) + dcNext[j]
			di := dc * g
			dg := dc * i
			df := dc * cPrev[j]
			dcPrev[j] = dc * f

			dzi := di * i * (1 - i)
			dzf := df * f * (1 - f)
			dzg := dg * (1 - g*g)
			dzo := do * o * (1 - o)
			dz[j], dz[H+j], dz[2*H+j], dz[3*H+j] = dzi, dzf, dzg, dzo

			l.B.G[j] += dzi
			l.B.G[H+j] += dzf
			l.B.G[2*H+j] += dzg
			l.B.G[3*H+j] += dzo
		}
		x := cache.xs[t]
		dx := dxsFlat[t*l.In : (t+1)*l.In]
		kernels.OuterAcc(l.Wx.G, 4*H, l.In, dz, x)
		kernels.MatTVecAcc(dx, l.Wx.W, 4*H, l.In, dz)
		kernels.OuterAcc(l.Wh.G, 4*H, H, dz, hPrev)
		kernels.MatTVecAcc(dhPrev, l.Wh.W, 4*H, H, dz)
		dxs[t] = dx
		dhNext, dhPrev = dhPrev, dhNext
		dcNext, dcPrev = dcPrev, dcNext
		kernels.Zero(dhPrev)
		kernels.Zero(dcPrev)
	}
	return dxs
}

// StackedLSTM chains several LSTM layers; layer n+1 consumes layer n's
// hidden sequence. RevPred uses a three-tier stack (§III-B).
type StackedLSTM struct {
	Layers []*LSTM
}

var _ Layer = (*StackedLSTM)(nil)

// NewStackedLSTM builds depth LSTM layers of the same hidden width.
func NewStackedLSTM(name string, in, hidden, depth int, rng *rand.Rand) *StackedLSTM {
	if depth < 1 {
		panic("nn: stacked LSTM needs depth >= 1")
	}
	s := &StackedLSTM{}
	for d := 0; d < depth; d++ {
		layerIn := hidden
		if d == 0 {
			layerIn = in
		}
		s.Layers = append(s.Layers, NewLSTM(fmt.Sprintf("%s.%d", name, d), layerIn, hidden, rng))
	}
	return s
}

// Params implements Layer.
func (s *StackedLSTM) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// GradShadow returns a weight-sharing copy of the stack with private
// gradient accumulators (see LSTM.GradShadow).
func (s *StackedLSTM) GradShadow() *StackedLSTM {
	out := &StackedLSTM{Layers: make([]*LSTM, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = l.GradShadow()
	}
	return out
}

// StackedCache chains per-layer caches.
type StackedCache struct {
	caches []*LSTMCache
}

// ForwardSeq returns the top layer's hidden sequence.
func (s *StackedLSTM) ForwardSeq(xs [][]float64) ([][]float64, *StackedCache) {
	return s.ForwardSeqWS(nil, xs)
}

// ForwardSeqWS is ForwardSeq over the given workspace; intermediate layer
// outputs live in the workspace, so nothing per-step is heap-allocated.
func (s *StackedLSTM) ForwardSeqWS(ws *Workspace, xs [][]float64) ([][]float64, *StackedCache) {
	c := &StackedCache{caches: make([]*LSTMCache, 0, len(s.Layers))}
	for _, l := range s.Layers {
		var lc *LSTMCache
		xs, lc = l.ForwardSeqWS(ws, xs)
		c.caches = append(c.caches, lc)
	}
	return xs, c
}

// ForwardSeqInferWS runs the stack through the cache-free inference path;
// bit-identical to ForwardSeqWS (see LSTM.ForwardSeqInferWS).
func (s *StackedLSTM) ForwardSeqInferWS(ws *Workspace, xs [][]float64) [][]float64 {
	for _, l := range s.Layers {
		xs = l.ForwardSeqInferWS(ws, xs)
	}
	return xs
}

// BackwardSeq backpropagates top-down through the stack.
func (s *StackedLSTM) BackwardSeq(cache *StackedCache, dhs [][]float64) [][]float64 {
	return s.BackwardSeqWS(nil, cache, dhs)
}

// BackwardSeqWS backpropagates top-down through the stack over ws.
func (s *StackedLSTM) BackwardSeqWS(ws *Workspace, cache *StackedCache, dhs [][]float64) [][]float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dhs = s.Layers[i].BackwardSeqWS(ws, cache.caches[i], dhs)
	}
	return dhs
}

// LastHiddenGrad builds a dhs slice that is zero everywhere except the final
// step, for nets that read only the last hidden state.
func LastHiddenGrad(T, hidden int, dLast []float64) [][]float64 {
	return LastHiddenGradWS(nil, T, hidden, dLast)
}

// LastHiddenGradWS is LastHiddenGrad with the final-step gradient copied
// into workspace memory.
func LastHiddenGradWS(ws *Workspace, T, hidden int, dLast []float64) [][]float64 {
	dhs := ws.takeRows(T)
	last := ws.take(hidden)
	copy(last, dLast)
	dhs[T-1] = last
	return dhs
}
