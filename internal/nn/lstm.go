package nn

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// LSTM is a single LSTM layer. Gates are stacked in the order
// input (i), forget (f), candidate (g), output (o), so Wx is (4H × In),
// Wh is (4H × H) and B is (4H × 1).
type LSTM struct {
	In, Hidden int
	Wx         *Param
	Wh         *Param
	B          *Param
}

var _ Layer = (*LSTM)(nil)

// NewLSTM builds an LSTM layer with Xavier-initialized weights and the
// customary +1 forget-gate bias (helps gradient flow early in training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(name+".Wx", 4*hidden, in),
		Wh:     NewParam(name+".Wh", 4*hidden, hidden),
		B:      NewParam(name+".b", 4*hidden, 1),
	}
	l.Wx.InitXavier(rng)
	l.Wh.InitXavier(rng)
	for h := 0; h < hidden; h++ {
		l.B.W[hidden+h] = 1 // forget gate bias
	}
	return l
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// lstmStep holds the per-timestep activations BPTT needs.
type lstmStep struct {
	x          []float64
	i, f, g, o []float64
	c, h       []float64 // post-step cell and hidden
	cPrev      []float64
}

// LSTMCache holds the full unrolled forward pass.
type LSTMCache struct {
	steps []*lstmStep
}

// ForwardSeq runs the layer over a sequence, starting from zero state, and
// returns the hidden state at every step.
func (l *LSTM) ForwardSeq(xs [][]float64) ([][]float64, *LSTMCache) {
	h := make([]float64, l.Hidden)
	c := make([]float64, l.Hidden)
	cache := &LSTMCache{}
	outs := make([][]float64, len(xs))
	for t, x := range xs {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: lstm %s expects input %d, got %d at step %d", l.Wx.Name, l.In, len(x), t))
		}
		st := &lstmStep{
			x:     append([]float64(nil), x...),
			i:     make([]float64, l.Hidden),
			f:     make([]float64, l.Hidden),
			g:     make([]float64, l.Hidden),
			o:     make([]float64, l.Hidden),
			c:     make([]float64, l.Hidden),
			h:     make([]float64, l.Hidden),
			cPrev: append([]float64(nil), c...),
		}
		H := l.Hidden
		for j := 0; j < H; j++ {
			zi := l.B.W[j]
			zf := l.B.W[H+j]
			zg := l.B.W[2*H+j]
			zo := l.B.W[3*H+j]
			rowI := l.Wx.W[j*l.In : (j+1)*l.In]
			rowF := l.Wx.W[(H+j)*l.In : (H+j+1)*l.In]
			rowG := l.Wx.W[(2*H+j)*l.In : (2*H+j+1)*l.In]
			rowO := l.Wx.W[(3*H+j)*l.In : (3*H+j+1)*l.In]
			for k, xk := range x {
				zi += rowI[k] * xk
				zf += rowF[k] * xk
				zg += rowG[k] * xk
				zo += rowO[k] * xk
			}
			hRowI := l.Wh.W[j*H : (j+1)*H]
			hRowF := l.Wh.W[(H+j)*H : (H+j+1)*H]
			hRowG := l.Wh.W[(2*H+j)*H : (2*H+j+1)*H]
			hRowO := l.Wh.W[(3*H+j)*H : (3*H+j+1)*H]
			for k, hk := range h {
				zi += hRowI[k] * hk
				zf += hRowF[k] * hk
				zg += hRowG[k] * hk
				zo += hRowO[k] * hk
			}
			st.i[j] = sigmoid(zi)
			st.f[j] = sigmoid(zf)
			st.g[j] = math.Tanh(zg)
			st.o[j] = sigmoid(zo)
			st.c[j] = st.f[j]*st.cPrev[j] + st.i[j]*st.g[j]
			st.h[j] = st.o[j] * math.Tanh(st.c[j])
		}
		c = st.c
		h = st.h
		cache.steps = append(cache.steps, st)
		outs[t] = append([]float64(nil), h...)
	}
	return outs, cache
}

// BackwardSeq backpropagates through time. dhs must contain one gradient per
// timestep's hidden output (zero slices are allowed and cheap). Parameter
// gradients accumulate into the layer's Params; the returned slices are the
// gradients w.r.t. each input step.
func (l *LSTM) BackwardSeq(cache *LSTMCache, dhs [][]float64) [][]float64 {
	T := len(cache.steps)
	if len(dhs) != T {
		panic(fmt.Sprintf("nn: lstm backward got %d grads for %d steps", len(dhs), T))
	}
	H := l.Hidden
	dxs := make([][]float64, T)
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	for t := T - 1; t >= 0; t-- {
		st := cache.steps[t]
		dh := make([]float64, H)
		for j := 0; j < H; j++ {
			dh[j] = dhNext[j]
			if dhs[t] != nil {
				dh[j] += dhs[t][j]
			}
		}
		dx := make([]float64, l.In)
		dhPrev := make([]float64, H)
		dcPrev := make([]float64, H)
		for j := 0; j < H; j++ {
			tanhC := math.Tanh(st.c[j])
			do := dh[j] * tanhC
			dc := dh[j]*st.o[j]*(1-tanhC*tanhC) + dcNext[j]
			di := dc * st.g[j]
			dg := dc * st.i[j]
			df := dc * st.cPrev[j]
			dcPrev[j] = dc * st.f[j]

			dzi := di * st.i[j] * (1 - st.i[j])
			dzf := df * st.f[j] * (1 - st.f[j])
			dzg := dg * (1 - st.g[j]*st.g[j])
			dzo := do * st.o[j] * (1 - st.o[j])

			l.B.G[j] += dzi
			l.B.G[H+j] += dzf
			l.B.G[2*H+j] += dzg
			l.B.G[3*H+j] += dzo

			rowI := l.Wx.W[j*l.In : (j+1)*l.In]
			rowF := l.Wx.W[(H+j)*l.In : (H+j+1)*l.In]
			rowG := l.Wx.W[(2*H+j)*l.In : (2*H+j+1)*l.In]
			rowO := l.Wx.W[(3*H+j)*l.In : (3*H+j+1)*l.In]
			gRowI := l.Wx.G[j*l.In : (j+1)*l.In]
			gRowF := l.Wx.G[(H+j)*l.In : (H+j+1)*l.In]
			gRowG := l.Wx.G[(2*H+j)*l.In : (2*H+j+1)*l.In]
			gRowO := l.Wx.G[(3*H+j)*l.In : (3*H+j+1)*l.In]
			for k, xk := range st.x {
				gRowI[k] += dzi * xk
				gRowF[k] += dzf * xk
				gRowG[k] += dzg * xk
				gRowO[k] += dzo * xk
				dx[k] += dzi*rowI[k] + dzf*rowF[k] + dzg*rowG[k] + dzo*rowO[k]
			}
			var hPrev []float64
			if t > 0 {
				hPrev = cache.steps[t-1].h
			} else {
				hPrev = make([]float64, H)
			}
			hRowI := l.Wh.W[j*H : (j+1)*H]
			hRowF := l.Wh.W[(H+j)*H : (H+j+1)*H]
			hRowG := l.Wh.W[(2*H+j)*H : (2*H+j+1)*H]
			hRowO := l.Wh.W[(3*H+j)*H : (3*H+j+1)*H]
			ghRowI := l.Wh.G[j*H : (j+1)*H]
			ghRowF := l.Wh.G[(H+j)*H : (H+j+1)*H]
			ghRowG := l.Wh.G[(2*H+j)*H : (2*H+j+1)*H]
			ghRowO := l.Wh.G[(3*H+j)*H : (3*H+j+1)*H]
			for k := 0; k < H; k++ {
				hk := hPrev[k]
				ghRowI[k] += dzi * hk
				ghRowF[k] += dzf * hk
				ghRowG[k] += dzg * hk
				ghRowO[k] += dzo * hk
				dhPrev[k] += dzi*hRowI[k] + dzf*hRowF[k] + dzg*hRowG[k] + dzo*hRowO[k]
			}
		}
		dxs[t] = dx
		dhNext = dhPrev
		dcNext = dcPrev
	}
	return dxs
}

// StackedLSTM chains several LSTM layers; layer n+1 consumes layer n's
// hidden sequence. RevPred uses a three-tier stack (§III-B).
type StackedLSTM struct {
	Layers []*LSTM
}

var _ Layer = (*StackedLSTM)(nil)

// NewStackedLSTM builds depth LSTM layers of the same hidden width.
func NewStackedLSTM(name string, in, hidden, depth int, rng *rand.Rand) *StackedLSTM {
	if depth < 1 {
		panic("nn: stacked LSTM needs depth >= 1")
	}
	s := &StackedLSTM{}
	for d := 0; d < depth; d++ {
		layerIn := hidden
		if d == 0 {
			layerIn = in
		}
		s.Layers = append(s.Layers, NewLSTM(fmt.Sprintf("%s.%d", name, d), layerIn, hidden, rng))
	}
	return s
}

// Params implements Layer.
func (s *StackedLSTM) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// StackedCache chains per-layer caches.
type StackedCache struct {
	caches []*LSTMCache
}

// ForwardSeq returns the top layer's hidden sequence.
func (s *StackedLSTM) ForwardSeq(xs [][]float64) ([][]float64, *StackedCache) {
	c := &StackedCache{}
	for _, l := range s.Layers {
		var lc *LSTMCache
		xs, lc = l.ForwardSeq(xs)
		c.caches = append(c.caches, lc)
	}
	return xs, c
}

// BackwardSeq backpropagates top-down through the stack.
func (s *StackedLSTM) BackwardSeq(cache *StackedCache, dhs [][]float64) [][]float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dhs = s.Layers[i].BackwardSeq(cache.caches[i], dhs)
	}
	return dhs
}

// LastHiddenGrad builds a dhs slice that is zero everywhere except the final
// step, for nets that read only the last hidden state.
func LastHiddenGrad(T, hidden int, dLast []float64) [][]float64 {
	dhs := make([][]float64, T)
	dhs[T-1] = append([]float64(nil), dLast...)
	return dhs
}
