package nn

import "spottune/internal/kernels"

// Workspace is a reusable scratch arena for forward/backward passes — the
// BPTT workspace of the kernels layer. One Workspace serves one goroutine;
// callers that share a model across goroutines (e.g. revpred inference under
// a campaign sweep) keep a Workspace per goroutine or pool them.
//
// Ownership rule: every slice a layer carves from the workspace — gate
// activations, caches, returned hidden sequences and gradients — is valid
// until the next Reset. Reset at the start of each training/inference
// round, after the previous round's outputs have been consumed or copied.
type Workspace struct {
	arena kernels.Arena

	// rows is a bump allocator for [][]float64 headers (per-step views),
	// so unrolled sequences allocate nothing per call.
	rows    [][]float64
	rowsOff int
}

// NewWorkspace returns an empty workspace; backing memory is allocated
// lazily on first use and reused after Reset.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset rewinds the workspace, invalidating every slice handed out since
// the previous Reset.
func (w *Workspace) Reset() {
	if w != nil {
		w.arena.Reset()
		w.rowsOff = 0
	}
}

// takeRows returns a slice of n nil row headers valid until the next Reset.
func (w *Workspace) takeRows(n int) [][]float64 {
	if w == nil {
		return make([][]float64, n)
	}
	if w.rowsOff+n > len(w.rows) {
		need := 2*len(w.rows) + n
		grown := make([][]float64, need)
		copy(grown, w.rows[:w.rowsOff])
		w.rows = grown
	}
	s := w.rows[w.rowsOff : w.rowsOff+n : w.rowsOff+n]
	w.rowsOff += n
	for i := range s {
		s[i] = nil
	}
	return s
}

// Take returns a zeroed scratch slice valid until the next Reset. It is
// the public form of take, for callers assembling their own buffers (e.g.
// revpred's joint feature vector) inside a forward pass.
func (w *Workspace) Take(n int) []float64 { return w.take(n) }

// take returns a zeroed scratch slice: arena-backed when a workspace is
// present, plain make otherwise (the workspace-free compatibility paths).
func (w *Workspace) take(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	return w.arena.Take(n)
}

// takeRaw is take without zeroing, for buffers that are fully overwritten
// before being read.
func (w *Workspace) takeRaw(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	return w.arena.TakeRaw(n)
}
