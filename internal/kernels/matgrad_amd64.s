//go:build amd64 && !purego

#include "textflag.h"

// func outerAccPtr(grad, dy, x *float64, rows, cols int)
//
// G += dy ⊗ x over a contiguous row-major rows×cols buffer: for each row r,
// g[r*cols+k] += dy[r]*x[k]. Every element is touched exactly once, so the
// packed lanes cannot change results.
TEXT ·outerAccPtr(SB), NOSPLIT, $0-40
	MOVQ grad+0(FP), DI
	MOVQ dy+8(FP), DX
	MOVQ x+16(FP), SI
	MOVQ rows+24(FP), R8
	MOVQ cols+32(FP), R9
	MOVQ R9, R10
	SHLQ $3, R10             // row stride in bytes

oblock2:
	CMPQ R8, $2
	JL   rowloop
	MOVSD    (DX), X9
	UNPCKLPD X9, X9          // broadcast dy[r]
	MOVSD    8(DX), X10
	UNPCKLPD X10, X10        // broadcast dy[r+1]
	MOVQ     DI, R11
	LEAQ     (DI)(R10*1), R12
	MOVQ     SI, BX          // x cursor
	MOVQ     R9, CX

opair2:
	CMPQ   CX, $2
	JL     otail2
	MOVUPS (BX), X0
	MOVAPS X0, X2
	MULPD  X9, X0
	MULPD  X10, X2
	MOVUPS (R11), X1
	ADDPD  X0, X1
	MOVUPS X1, (R11)
	MOVUPS (R12), X3
	ADDPD  X2, X3
	MOVUPS X3, (R12)
	ADDQ   $16, BX
	ADDQ   $16, R11
	ADDQ   $16, R12
	SUBQ   $2, CX
	JMP    opair2

otail2:
	TESTQ CX, CX
	JLE   onext2
	MOVSD (BX), X0
	MOVAPS X0, X2
	MULSD X9, X0
	MULSD X10, X2
	MOVSD (R11), X1
	ADDSD X0, X1
	MOVSD X1, (R11)
	MOVSD (R12), X3
	ADDSD X2, X3
	MOVSD X3, (R12)

onext2:
	ADDQ $16, DX
	LEAQ (DI)(R10*2), DI
	SUBQ $2, R8
	JMP  oblock2

rowloop:
	TESTQ R8, R8
	JLE   done
	MOVSD    (DX), X0
	UNPCKLPD X0, X0         // broadcast dy[r]
	MOVQ     SI, BX         // x cursor (rewinds every row)
	MOVQ     R9, CX

inner8:
	CMPQ   CX, $8
	JL     inner2
	MOVUPS (BX), X1
	MOVUPS 16(BX), X2
	MOVUPS 32(BX), X3
	MOVUPS 48(BX), X4
	MULPD  X0, X1
	MULPD  X0, X2
	MULPD  X0, X3
	MULPD  X0, X4
	MOVUPS (DI), X5
	MOVUPS 16(DI), X6
	MOVUPS 32(DI), X7
	MOVUPS 48(DI), X8
	ADDPD  X1, X5
	ADDPD  X2, X6
	ADDPD  X3, X7
	ADDPD  X4, X8
	MOVUPS X5, (DI)
	MOVUPS X6, 16(DI)
	MOVUPS X7, 32(DI)
	MOVUPS X8, 48(DI)
	ADDQ   $64, BX
	ADDQ   $64, DI
	SUBQ   $8, CX
	JMP    inner8

inner2:
	CMPQ   CX, $2
	JL     tail1
	MOVUPS (BX), X1
	MULPD  X0, X1
	MOVUPS (DI), X5
	ADDPD  X1, X5
	MOVUPS X5, (DI)
	ADDQ   $16, BX
	ADDQ   $16, DI
	SUBQ   $2, CX
	JMP    inner2

tail1:
	TESTQ CX, CX
	JLE   rownext
	MOVSD (BX), X1
	MULSD X0, X1
	MOVSD (DI), X5
	ADDSD X1, X5
	MOVSD X5, (DI)
	ADDQ  $8, DI

rownext:
	ADDQ $8, DX
	DECQ R8
	JMP  rowloop

done:
	RET

// func matTVecAccPtr(dx, a, dy *float64, rows, cols int)
//
// dx += Aᵀ·dy. Rows are consumed four at a time and each block's
// contribution is tree-summed before touching dx:
// dx[k] += (d0·r0[k] + d1·r1[k]) + (d2·r2[k] + d3·r3[k]); remainder rows
// apply one at a time in ascending order. The grouping breaks the
// store-to-load forwarding chain a strict row-by-row loop would carry
// through dx. The generic Go fallback implements the identical grouping,
// so results are platform-independent.
TEXT ·matTVecAccPtr(SB), NOSPLIT, $0-40
	MOVQ dx+0(FP), R10
	MOVQ a+8(FP), DI
	MOVQ dy+16(FP), DX
	MOVQ rows+24(FP), R8
	MOVQ cols+32(FP), R9
	MOVQ R9, SI
	SHLQ $3, SI             // row stride in bytes

tblock4:
	CMPQ R8, $4
	JL   trowloop
	MOVSD    (DX), X9
	UNPCKLPD X9, X9          // broadcast dy[r..r+3]
	MOVSD    8(DX), X10
	UNPCKLPD X10, X10
	MOVSD    16(DX), X11
	UNPCKLPD X11, X11
	MOVSD    24(DX), X12
	UNPCKLPD X12, X12
	MOVQ     DI, R11
	LEAQ     (DI)(SI*1), R12
	LEAQ     (DI)(SI*2), R13
	LEAQ     (R12)(SI*2), R14
	MOVQ     R10, BX         // dx cursor
	MOVQ     R9, CX

tpair4:
	CMPQ   CX, $2
	JL     ttail4
	MOVUPS (R11), X1
	MULPD  X9, X1
	MOVUPS (R12), X2
	MULPD  X10, X2
	ADDPD  X2, X1
	MOVUPS (R13), X3
	MULPD  X11, X3
	MOVUPS (R14), X4
	MULPD  X12, X4
	ADDPD  X4, X3
	ADDPD  X3, X1
	MOVUPS (BX), X5
	ADDPD  X1, X5
	MOVUPS X5, (BX)
	ADDQ   $16, R11
	ADDQ   $16, R12
	ADDQ   $16, R13
	ADDQ   $16, R14
	ADDQ   $16, BX
	SUBQ   $2, CX
	JMP    tpair4

ttail4:
	TESTQ CX, CX
	JLE   tnext4
	MOVSD (R11), X1
	MULSD X9, X1
	MOVSD (R12), X2
	MULSD X10, X2
	ADDSD X2, X1
	MOVSD (R13), X3
	MULSD X11, X3
	MOVSD (R14), X4
	MULSD X12, X4
	ADDSD X4, X3
	ADDSD X3, X1
	MOVSD (BX), X5
	ADDSD X1, X5
	MOVSD X5, (BX)

tnext4:
	ADDQ $32, DX
	LEAQ (DI)(SI*4), DI
	SUBQ $4, R8
	JMP  tblock4

trowloop:
	TESTQ R8, R8
	JLE   tdone
	MOVSD    (DX), X0
	UNPCKLPD X0, X0          // broadcast dy[r]
	MOVQ     R10, BX         // dx cursor (rewinds every row)
	MOVQ     R9, CX

tinner2:
	CMPQ   CX, $2
	JL     ttail1
	MOVUPS (DI), X1
	MULPD  X0, X1
	MOVUPS (BX), X5
	ADDPD  X1, X5
	MOVUPS X5, (BX)
	ADDQ   $16, DI
	ADDQ   $16, BX
	SUBQ   $2, CX
	JMP    tinner2

ttail1:
	TESTQ CX, CX
	JLE   trownext
	MOVSD (DI), X1
	MULSD X0, X1
	MOVSD (BX), X5
	ADDSD X1, X5
	MOVSD X5, (BX)
	ADDQ  $8, DI

trownext:
	ADDQ $8, DX
	DECQ R8
	JMP  trowloop

tdone:
	RET
