// Package kernels provides the shared flat-buffer numeric primitives the
// rest of the system is built on: fused matrix–vector products over
// row-major buffers, axpy/outer-product accumulators, and a bump-allocator
// scratch arena. internal/nn (LSTM + dense layers), internal/fit (least
// squares, Levenberg–Marquardt), and internal/revpred's inference hot path
// all run on these kernels.
//
// Every kernel accumulates in strict ascending index order, so replacing a
// naive loop with the kernel is bit-for-bit equivalent — no hidden
// reassociation. Where a caller *chooses* a different loop nesting (e.g. the
// LSTM backward pass switching from gate-interleaved to row-major order),
// the reordering happens in the caller and is documented there, not smuggled
// in here.
package kernels

// Dot returns the inner product of two equal-length vectors, accumulating
// in ascending index order.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("kernels: Dot length mismatch")
	}
	s := 0.0
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// MatVec computes y = A·x for a row-major rows×cols matrix: each y[r] is the
// in-order dot product of row r with x.
func MatVec(y, a []float64, rows, cols int, x []float64) {
	checkDims(a, rows, cols, x, cols, y, rows)
	x = x[:cols]
	for r := 0; r < rows; r++ {
		y[r] = Dot(a[r*cols:r*cols+cols], x)
	}
}

// MatVecAcc computes y += A·x with PAIRWISE row sums: each row accumulates
// even-index products and odd-index products separately (an odd tail joins
// the even sum) and y[r] += evenSum + oddSum. This is the one kernel whose
// summation order differs from a naive loop — the price of the two-lane
// SIMD fast path. The generic fallback implements the identical pairwise
// order, so results are deterministic and platform-independent; the switch
// from strict-order accumulation is documented in DESIGN.md (kernels layer)
// together with the golden-evidence procedure. Callers that need strict
// in-order sums use MatVec/Dot instead.
func MatVecAcc(y, a []float64, rows, cols int, x []float64) {
	checkDims(a, rows, cols, x, cols, y, rows)
	matVecAccImpl(y, a, rows, cols, x)
}

// MatTVecAcc computes dx += Aᵀ·dy without materializing the transpose.
// Rows are consumed in ascending order four at a time, each block's four
// contributions tree-summed before they touch dx ((r0+r1) + (r2+r3));
// remainder rows apply singly. The grouping is identical on every platform
// (asm and generic fallbacks match bit-for-bit) but differs from a strict
// row-by-row loop — this is a gradient-path kernel, consumed only under
// tolerances (see DESIGN.md, kernels layer).
func MatTVecAcc(dx, a []float64, rows, cols int, dy []float64) {
	checkDims(a, rows, cols, dx, cols, dy, rows)
	matTVecAccImpl(dx, a, rows, cols, dy)
}

// Axpy computes y += alpha·x elementwise. Each element is an independent
// mul+add, so the SIMD fast path on amd64 is bit-identical to the scalar
// loop.
func Axpy(y []float64, alpha float64, x []float64) {
	if len(y) != len(x) {
		panic("kernels: Axpy length mismatch")
	}
	axpyImpl(y, alpha, x)
}

// OuterAcc computes G += dy ⊗ x for a row-major rows×cols gradient buffer:
// G[r,k] += dy[r]·x[k]. Each element is touched exactly once, so the update
// order cannot change results.
func OuterAcc(g []float64, rows, cols int, dy, x []float64) {
	checkDims(g, rows, cols, x, cols, dy, rows)
	outerAccImpl(g, rows, cols, dy, x)
}

// Scale multiplies every element of x by alpha.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

func checkDims(a []float64, rows, cols int, x []float64, wantX int, y []float64, wantY int) {
	if len(a) < rows*cols {
		panic("kernels: matrix buffer too short")
	}
	if len(x) < wantX || len(y) < wantY {
		panic("kernels: vector too short for matrix dims")
	}
}
