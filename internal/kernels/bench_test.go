package kernels

import (
	"math/rand/v2"
	"testing"
)

// Shapes mirror the RevPred LSTM: 4H=96 rows, cols 24 (hidden) or 6
// (features).

func benchSetup(rows, cols, T int) (a []float64, xs [][]float64, zs []float64) {
	rng := rand.New(rand.NewPCG(1, 1))
	a = randVec(rng, rows*cols)
	zs = randVec(rng, T*rows)
	xs = make([][]float64, T)
	for t := range xs {
		xs[t] = randVec(rng, cols)
	}
	return
}

func BenchmarkMatVecAcc96x24(b *testing.B) {
	a, xs, zs := benchSetup(96, 24, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatVecAcc(zs, a, 96, 24, xs[0])
	}
}

func BenchmarkMatVecAcc96x6(b *testing.B) {
	a, xs, zs := benchSetup(96, 6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatVecAcc(zs, a, 96, 6, xs[0])
	}
}

func BenchmarkMatTVecAcc96x24(b *testing.B) {
	a, xs, zs := benchSetup(96, 24, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatTVecAcc(xs[0], a, 96, 24, zs)
	}
}

func BenchmarkOuterAcc96x24(b *testing.B) {
	a, xs, zs := benchSetup(96, 24, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OuterAcc(a, 96, 24, zs, xs[0])
	}
}

func BenchmarkAxpy24(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x, y := randVec(rng, 24), randVec(rng, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Axpy(y, 0.5, x)
	}
}

func BenchmarkAxpy1000(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x, y := randVec(rng, 1000), randVec(rng, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Axpy(y, 0.5, x)
	}
}
