//go:build amd64 && !purego

#include "textflag.h"

// func axpyPtr(y, x *float64, n int, alpha float64)
//
// y[i] += alpha * x[i] for i in [0, n), two lanes at a time with SSE2
// (baseline amd64, no feature detection needed). Each element is an
// independent mul+add, so the result is bit-identical to the scalar loop —
// packed lanes buy throughput, not reassociation.
TEXT ·axpyPtr(SB), NOSPLIT, $0-32
	MOVQ  y+0(FP), DI
	MOVQ  x+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVSD alpha+24(FP), X0
	UNPCKLPD X0, X0          // broadcast alpha to both lanes

loop8:
	CMPQ CX, $8
	JL   loop2
	MOVUPS (SI), X1
	MOVUPS 16(SI), X2
	MOVUPS 32(SI), X3
	MOVUPS 48(SI), X4
	MULPD  X0, X1
	MULPD  X0, X2
	MULPD  X0, X3
	MULPD  X0, X4
	MOVUPS (DI), X5
	MOVUPS 16(DI), X6
	MOVUPS 32(DI), X7
	MOVUPS 48(DI), X8
	ADDPD  X1, X5
	ADDPD  X2, X6
	ADDPD  X3, X7
	ADDPD  X4, X8
	MOVUPS X5, (DI)
	MOVUPS X6, 16(DI)
	MOVUPS X7, 32(DI)
	MOVUPS X8, 48(DI)
	ADDQ   $64, SI
	ADDQ   $64, DI
	SUBQ   $8, CX
	JMP    loop8

loop2:
	CMPQ CX, $2
	JL   tail
	MOVUPS (SI), X1
	MULPD  X0, X1
	MOVUPS (DI), X5
	ADDPD  X1, X5
	MOVUPS X5, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $2, CX
	JMP    loop2

tail:
	CMPQ CX, $1
	JL   done
	MOVSD (SI), X1
	MULSD X0, X1
	MOVSD (DI), X5
	ADDSD X1, X5
	MOVSD X5, (DI)

done:
	RET
