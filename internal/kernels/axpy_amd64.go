//go:build amd64 && !purego

package kernels

// Assembly kernels (SSE2, part of the amd64 baseline — no feature detection
// needed). All three are element-wise mul+add loops with no reassociation,
// so their results are bit-identical to the scalar fallbacks.

//go:noescape
func axpyPtr(y, x *float64, n int, alpha float64)

//go:noescape
func outerAccPtr(grad, dy, x *float64, rows, cols int)

//go:noescape
func matTVecAccPtr(dx, a, dy *float64, rows, cols int)

//go:noescape
func matVecAccPtr(y, a, x *float64, rows, cols int)

// axpyImpl dispatches to the assembly kernel. Short vectors stay in Go —
// below a handful of lanes the call overhead beats the SIMD win.
func axpyImpl(y []float64, alpha float64, x []float64) {
	if len(x) < 4 {
		for i, v := range x {
			y[i] += alpha * v
		}
		return
	}
	axpyPtr(&y[0], &x[0], len(x), alpha)
}

func outerAccImpl(g []float64, rows, cols int, dy, x []float64) {
	if rows == 0 || cols == 0 {
		return
	}
	outerAccPtr(&g[0], &dy[0], &x[0], rows, cols)
}

func matTVecAccImpl(dx, a []float64, rows, cols int, dy []float64) {
	if rows == 0 || cols == 0 {
		return
	}
	matTVecAccPtr(&dx[0], &a[0], &dy[0], rows, cols)
}

func matVecAccImpl(y, a []float64, rows, cols int, x []float64) {
	if rows == 0 || cols == 0 {
		return
	}
	matVecAccPtr(&y[0], &a[0], &x[0], rows, cols)
}
