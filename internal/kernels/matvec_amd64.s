//go:build amd64 && !purego

#include "textflag.h"

// func matVecAccPtr(y, a, x *float64, rows, cols int)
//
// y[r] += row_r·x with pairwise two-lane accumulation: even-index products
// in the low lane, odd-index products in the high lane, an odd tail folded
// into the even sum, then y[r] += evenSum + oddSum. The generic Go fallback
// implements the identical order, so results match bit-for-bit across
// platforms. Rows are processed four at a time for port-level parallelism;
// per-row order is unaffected by the blocking.
TEXT ·matVecAccPtr(SB), NOSPLIT, $0-40
	MOVQ y+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ rows+24(FP), R8
	MOVQ cols+32(FP), R9
	MOVQ R9, R10
	SHLQ $3, R10             // row stride in bytes

block4:
	CMPQ R8, $4
	JL   row1
	MOVQ SI, R11
	LEAQ (SI)(R10*1), R12
	LEAQ (SI)(R10*2), R13
	LEAQ (R12)(R10*2), R14
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORPS X8, X8
	MOVQ  DX, BX             // x cursor
	MOVQ  R9, CX

pair4:
	CMPQ   CX, $2
	JL     tail4
	MOVUPS (BX), X0
	MOVUPS (R11), X1
	MULPD  X0, X1
	ADDPD  X1, X5
	MOVUPS (R12), X2
	MULPD  X0, X2
	ADDPD  X2, X6
	MOVUPS (R13), X3
	MULPD  X0, X3
	ADDPD  X3, X7
	MOVUPS (R14), X4
	MULPD  X0, X4
	ADDPD  X4, X8
	ADDQ   $16, BX
	ADDQ   $16, R11
	ADDQ   $16, R12
	ADDQ   $16, R13
	ADDQ   $16, R14
	SUBQ   $2, CX
	JMP    pair4

tail4:
	TESTQ CX, CX
	JLE   hsum4
	MOVSD (BX), X0
	MOVSD (R11), X1
	MULSD X0, X1
	ADDSD X1, X5             // tail joins the even-lane sum
	MOVSD (R12), X2
	MULSD X0, X2
	ADDSD X2, X6
	MOVSD (R13), X3
	MULSD X0, X3
	ADDSD X3, X7
	MOVSD (R14), X4
	MULSD X0, X4
	ADDSD X4, X8

hsum4:
	MOVAPS   X5, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X5          // evenSum + oddSum
	MOVSD    (DI), X0
	ADDSD    X5, X0          // y[r] + rowSum
	MOVSD    X0, (DI)
	MOVAPS   X6, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X6
	MOVSD    8(DI), X0
	ADDSD    X6, X0
	MOVSD    X0, 8(DI)
	MOVAPS   X7, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X7
	MOVSD    16(DI), X0
	ADDSD    X7, X0
	MOVSD    X0, 16(DI)
	MOVAPS   X8, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X8
	MOVSD    24(DI), X0
	ADDSD    X8, X0
	MOVSD    X0, 24(DI)
	ADDQ     $32, DI
	LEAQ     (SI)(R10*4), SI
	SUBQ     $4, R8
	JMP      block4

row1:
	TESTQ R8, R8
	JLE   done
	XORPS X5, X5
	MOVQ  DX, BX
	MOVQ  SI, R11
	MOVQ  R9, CX

pair1:
	CMPQ   CX, $2
	JL     tail1
	MOVUPS (BX), X0
	MOVUPS (R11), X1
	MULPD  X0, X1
	ADDPD  X1, X5
	ADDQ   $16, BX
	ADDQ   $16, R11
	SUBQ   $2, CX
	JMP    pair1

tail1:
	TESTQ CX, CX
	JLE   hsum1
	MOVSD (BX), X0
	MOVSD (R11), X1
	MULSD X0, X1
	ADDSD X1, X5

hsum1:
	MOVAPS   X5, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X5
	MOVSD    (DI), X0
	ADDSD    X5, X0
	MOVSD    X0, (DI)
	ADDQ     $8, DI
	ADDQ     R10, SI
	DECQ     R8
	JMP      row1

done:
	RET
