package kernels

import (
	"math/rand/v2"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// naiveDot is the reference in-order accumulation every kernel must match
// bit-for-bit.
func naiveDot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestDotBitForBitVsNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{0, 1, 3, 24, 59, 128} {
		a, b := randVec(rng, n), randVec(rng, n)
		if got, want := Dot(a, b), naiveDot(a, b); got != want {
			t.Fatalf("n=%d: Dot=%v naive=%v", n, got, want)
		}
	}
}

func TestMatVecBitForBit(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	rows, cols := 17, 11
	a, x := randVec(rng, rows*cols), randVec(rng, cols)
	y := make([]float64, rows)
	MatVec(y, a, rows, cols, x)
	acc := randVec(rng, rows)
	accWant := append([]float64(nil), acc...)
	MatVecAcc(acc, a, rows, cols, x)
	for r := 0; r < rows; r++ {
		want := naiveDot(a[r*cols:(r+1)*cols], x)
		if y[r] != want {
			t.Fatalf("MatVec row %d: %v != %v", r, y[r], want)
		}
		// MatVecAcc sums pairwise (even/odd lanes, tail into even) — the
		// documented kernel order, identical on every platform.
		var s0, s1 float64
		k := 0
		for ; k+2 <= cols; k += 2 {
			s0 += a[r*cols+k] * x[k]
			s1 += a[r*cols+k+1] * x[k+1]
		}
		if k < cols {
			s0 += a[r*cols+k] * x[k]
		}
		if want := accWant[r] + (s0 + s1); acc[r] != want {
			t.Fatalf("MatVecAcc row %d: %v != %v", r, acc[r], want)
		}
	}
}

func TestMatTVecAccMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	rows, cols := 9, 7
	a, dy := randVec(rng, rows*cols), randVec(rng, rows)
	dx := make([]float64, cols)
	MatTVecAcc(dx, a, rows, cols, dy)
	// Reference mirrors the documented kernel grouping: four-row blocks
	// tree-summed, remainder rows applied singly.
	want := make([]float64, cols)
	r := 0
	for ; r+4 <= rows; r += 4 {
		for k := 0; k < cols; k++ {
			want[k] += (dy[r]*a[r*cols+k] + dy[r+1]*a[(r+1)*cols+k]) +
				(dy[r+2]*a[(r+2)*cols+k] + dy[r+3]*a[(r+3)*cols+k])
		}
	}
	for ; r < rows; r++ {
		for k := 0; k < cols; k++ {
			want[k] += dy[r] * a[r*cols+k]
		}
	}
	for k := range want {
		if dx[k] != want[k] {
			t.Fatalf("col %d: %v != %v", k, dx[k], want[k])
		}
	}
}

func TestOuterAccAndAxpy(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	rows, cols := 6, 5
	g := randVec(rng, rows*cols)
	want := append([]float64(nil), g...)
	dy, x := randVec(rng, rows), randVec(rng, cols)
	OuterAcc(g, rows, cols, dy, x)
	for r := 0; r < rows; r++ {
		for k := 0; k < cols; k++ {
			want[r*cols+k] += dy[r] * x[k]
		}
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("OuterAcc[%d]: %v != %v", i, g[i], want[i])
		}
	}
	y := randVec(rng, cols)
	wy := append([]float64(nil), y...)
	Axpy(y, 0.37, x)
	for i := range y {
		if y[i] != wy[i]+0.37*x[i] {
			t.Fatalf("Axpy[%d]", i)
		}
	}
}

func TestKernelPanicsOnShortBuffers(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on short buffer", name)
			}
		}()
		f()
	}
	expectPanic("Dot", func() { Dot(make([]float64, 2), make([]float64, 3)) })
	expectPanic("MatVec", func() { MatVec(make([]float64, 1), make([]float64, 3), 2, 2, make([]float64, 2)) })
	expectPanic("Axpy", func() { Axpy(make([]float64, 2), 1, make([]float64, 3)) })
}

func TestArenaReuseAndZeroing(t *testing.T) {
	var a Arena
	s1 := a.Take(100)
	for i := range s1 {
		s1[i] = 7
	}
	a.Reset()
	s2 := a.Take(100)
	if &s1[0] != &s2[0] {
		t.Fatal("Reset did not reuse the chunk")
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("Take returned dirty memory at %d: %v", i, v)
		}
	}
	if a.Footprint() != arenaMinChunk {
		t.Fatalf("footprint %d, want %d", a.Footprint(), arenaMinChunk)
	}
}

func TestArenaGrowsForLargeTakes(t *testing.T) {
	var a Arena
	big := a.Take(3 * arenaMinChunk)
	if len(big) != 3*arenaMinChunk {
		t.Fatalf("len %d", len(big))
	}
	small := a.Take(10)
	if len(small) != 10 {
		t.Fatalf("len %d", len(small))
	}
	a.Reset()
	// After reset the first chunk is carved first again.
	if got := a.Take(5); len(got) != 5 {
		t.Fatalf("len %d", len(got))
	}
	if a.Take(0) != nil {
		t.Fatal("Take(0) should be nil")
	}
}

func TestArenaTakeCapIsExact(t *testing.T) {
	var a Arena
	s := a.Take(8)
	if cap(s) != 8 {
		t.Fatalf("cap %d, want 8 (no aliasing via append)", cap(s))
	}
}

func TestAxpyAsmMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 48, 59, 96, 1000} {
		x := randVec(rng, n)
		y := randVec(rng, n)
		want := append([]float64(nil), y...)
		alpha := 2*rng.Float64() - 1
		for i, v := range x { // scalar reference
			want[i] += alpha * v
		}
		Axpy(y, alpha, x)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Axpy[%d] = %v, scalar %v", n, i, y[i], want[i])
			}
		}
	}
}
