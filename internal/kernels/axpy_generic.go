//go:build !amd64 || purego

package kernels

// Portable scalar fallbacks for non-amd64 builds (or the purego tag). They
// compute bit-identical results to the assembly kernels: the same
// element-wise mul+add in the same row-by-row order, one lane at a time.

func axpyImpl(y []float64, alpha float64, x []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

func outerAccImpl(g []float64, rows, cols int, dy, x []float64) {
	x = x[:cols]
	for r := 0; r < rows; r++ {
		row := g[r*cols:][:cols]
		d := dy[r]
		for k, xk := range x {
			row[k] += d * xk
		}
	}
}

func matTVecAccImpl(dx, a []float64, rows, cols int, dy []float64) {
	dx = dx[:cols]
	r := 0
	// Four-row blocks tree-sum their contribution before touching dx,
	// mirroring the SSE2 kernel's grouping exactly.
	for ; r+4 <= rows; r += 4 {
		r0 := a[r*cols:][:cols]
		r1 := a[(r+1)*cols:][:cols]
		r2 := a[(r+2)*cols:][:cols]
		r3 := a[(r+3)*cols:][:cols]
		d0, d1, d2, d3 := dy[r], dy[r+1], dy[r+2], dy[r+3]
		for k, v := range dx {
			dx[k] = v + ((d0*r0[k] + d1*r1[k]) + (d2*r2[k] + d3*r3[k]))
		}
	}
	for ; r < rows; r++ {
		row := a[r*cols:][:cols]
		d := dy[r]
		for k, w := range row {
			dx[k] += d * w
		}
	}
}

func matVecAccImpl(y, a []float64, rows, cols int, x []float64) {
	x = x[:cols]
	for r := 0; r < rows; r++ {
		row := a[r*cols:][:cols]
		var s0, s1 float64 // even / odd lanes, matching the SSE2 kernel
		k := 0
		for ; k+2 <= cols; k += 2 {
			s0 += row[k] * x[k]
			s1 += row[k+1] * x[k+1]
		}
		if k < cols {
			s0 += row[k] * x[k]
		}
		y[r] += s0 + s1
	}
}
