package kernels

// Arena is a bump allocator for float64 scratch buffers. Take carves zeroed
// slices out of large backing chunks; Reset rewinds the arena so the memory
// is reused by the next round of Takes. One Arena serves one goroutine —
// there is no locking.
//
// Ownership rule: a slice returned by Take is valid until the next Reset.
// Callers that need state to survive a Reset (trained weights, cached
// hidden states) must copy it out; everything transient — gate activations,
// BPTT caches, Jacobians — lives in the arena.
type Arena struct {
	chunks [][]float64
	cur    int // index of the chunk currently being carved
	off    int // first free element in chunks[cur]
}

// arenaMinChunk is the smallest backing chunk (float64s). 8192 floats =
// 64 KiB, enough for a whole RevPred-sized LSTM cache in one chunk.
const arenaMinChunk = 8192

// Reset rewinds the arena without releasing its chunks.
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
}

// Take returns a zeroed []float64 of length n carved from the arena.
func (a *Arena) Take(n int) []float64 {
	s := a.TakeRaw(n)
	Zero(s)
	return s
}

// TakeRaw is Take without the zeroing pass, for buffers the caller fully
// overwrites before reading (gate pre-activations, copied-into state). The
// returned memory holds stale values from earlier rounds.
func (a *Arena) TakeRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	// Carve from the current chunk, skipping to the next when full; a new
	// chunk doubles the last one's size until n fits.
	for a.cur < len(a.chunks) {
		c := a.chunks[a.cur]
		if a.off+n <= len(c) {
			s := c[a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		a.cur++
		a.off = 0
	}
	size := arenaMinChunk
	if len(a.chunks) > 0 {
		size = 2 * len(a.chunks[len(a.chunks)-1])
	}
	for size < n {
		size *= 2
	}
	a.chunks = append(a.chunks, make([]float64, size))
	a.cur = len(a.chunks) - 1
	s := a.chunks[a.cur][:n:n]
	a.off = n
	return s
}

// Footprint returns the total float64 capacity currently held by the arena
// (diagnostics and tests).
func (a *Arena) Footprint() int {
	n := 0
	for _, c := range a.chunks {
		n += len(c)
	}
	return n
}
