package service

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"spottune/internal/campaign"
	"spottune/internal/core"
	"spottune/internal/obs"
	"spottune/internal/workload"
)

// testWorld builds the small shared fixture: a 5-day calm market with a
// constant predictor and quick synthetic curves.
func testWorld(t *testing.T) (*campaign.Environment, *workload.Benchmark, workload.Curves) {
	t.Helper()
	env, err := campaign.NewEnvironment(campaign.EnvOptions{
		Seed: 11, Days: 5, TrainDays: 2, Predictor: campaign.PredictorConstant,
	})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := workload.SuiteByName("LoR", workload.Config{Seed: 11, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	return env, bench, bench.SyntheticCurves(11)
}

// runService runs a battery collecting every result, failing the test on a
// service-level error.
func runService(t *testing.T, env *campaign.Environment, bench *workload.Benchmark, curves workload.Curves, tenants []Tenant, cfg Config) (*Summary, []Result) {
	t.Helper()
	var got []Result
	cfg.OnResult = func(r Result) { got = append(got, r) }
	sum, err := Run(env, bench, curves, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sum, got
}

// reportKey reduces a report to the economics the metamorphic pin compares
// bit-for-bit: cost decomposition, completion time, work, and selection.
func reportKey(r *core.Report) string {
	return fmt.Sprintf("%x/%x/%x/%v/%d/%d/%s",
		r.NetCost, r.GrossCost, r.Refund, r.JCT, r.TotalSteps, r.Deployments, r.Best)
}

// TestServiceMatchesSoloCampaigns is the metamorphic pin: with contention
// disabled, every tenant's economics are bit-identical across shard counts
// {1, 4, 8} and to legacy solo campaign.Sweep execution — sharing a clock
// changes scheduling, never results.
func TestServiceMatchesSoloCampaigns(t *testing.T) {
	env, bench, curves := testWorld(t)
	tenants := DefaultBattery(8, 11)

	solo := make([]string, len(tenants))
	for i, ten := range tenants {
		rep, err := env.RunPolicy(bench, curves, campaign.Options{Theta: ten.Theta, Seed: ten.Seed})
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = reportKey(rep)
	}

	for _, shards := range []int{1, 4, 8} {
		sum, got := runService(t, env, bench, curves, tenants,
			Config{Shards: shards, MaxInFlight: 3})
		if sum.Admitted != len(tenants) || sum.Rejected != 0 || sum.Failed != 0 {
			t.Fatalf("shards=%d: summary %+v", shards, sum)
		}
		if len(got) != len(tenants) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(tenants))
		}
		for i, r := range got {
			if r.Index != i {
				t.Fatalf("shards=%d: results out of submission order at %d: %+v", shards, i, r)
			}
			if r.Err != nil {
				t.Fatalf("shards=%d tenant %s: %v", shards, r.Tenant.ID, r.Err)
			}
			if len(r.Violations) != 0 {
				t.Fatalf("shards=%d tenant %s: violations %v", shards, r.Tenant.ID, r.Violations)
			}
			if key := reportKey(r.Report); key != solo[i] {
				t.Errorf("shards=%d tenant %s diverged from solo run:\n service %s\n solo    %s",
					shards, r.Tenant.ID, key, solo[i])
			}
		}
	}
}

// TestServiceMatchesSweep pins the service against the legacy worker-pool
// path too: campaign.Sweep over the same options produces the same reports.
func TestServiceMatchesSweep(t *testing.T) {
	env, bench, curves := testWorld(t)
	tenants := DefaultBattery(4, 23)

	tasks := make([]campaign.Task, len(tenants))
	for i, ten := range tenants {
		opt := campaign.Options{Theta: ten.Theta, Seed: ten.Seed}
		tasks[i] = campaign.Task{Key: ten.ID, Run: func(*rand.Rand) (*core.Report, error) {
			return env.RunPolicy(bench, curves, opt)
		}}
	}
	res := campaign.Sweep(tasks, campaign.SweepOptions{Workers: 2, Seed: 23})
	if err := campaign.FirstErr(res); err != nil {
		t.Fatal(err)
	}
	_, got := runService(t, env, bench, curves, tenants, Config{Shards: 2, MaxInFlight: 2})
	for i := range tenants {
		if a, b := reportKey(res[i].Report), reportKey(got[i].Report); a != b {
			t.Errorf("tenant %s: sweep %s vs service %s", tenants[i].ID, a, b)
		}
	}
}

// TestServiceContention pins the coupled mode: the capacity audit stays
// clean (enforcement never leaks), campaigns still complete, and demand
// pressure makes the contended region at least as expensive as the free one.
func TestServiceContention(t *testing.T) {
	env, bench, curves := testWorld(t)
	tenants := DefaultBattery(6, 31)

	free, _ := runService(t, env, bench, curves, tenants, Config{Shards: 1, MaxInFlight: 6})
	sum, got := runService(t, env, bench, curves, tenants, Config{
		Shards: 1, MaxInFlight: 6, Contention: true, Capacity: 2, SurgeSlope: 0.5,
	})
	if sum.Admitted != len(tenants) || sum.Failed != 0 {
		t.Fatalf("contended summary %+v", sum)
	}
	if len(sum.Capacity) != 0 {
		t.Fatalf("capacity oversubscription under enforcement: %v", sum.Capacity)
	}
	for _, r := range got {
		if r.Err != nil {
			t.Fatalf("tenant %s failed under contention: %v", r.Tenant.ID, r.Err)
		}
		for _, v := range r.Violations {
			t.Fatalf("tenant %s invariant violation under contention: %v", r.Tenant.ID, v)
		}
	}
	if sum.TotalCost < free.TotalCost {
		t.Errorf("surge pricing made the contended region cheaper: %.4f vs %.4f",
			sum.TotalCost, free.TotalCost)
	}
}

// TestServiceAdmissionCaps pins rejection semantics: capped-out tenants get
// a reason and no report (they never run, so no ledger entries can exist),
// admitted ones are unaffected, and the service trace reconciles.
func TestServiceAdmissionCaps(t *testing.T) {
	env, bench, curves := testWorld(t)
	tenants := DefaultBattery(4, 47)
	tenants[1].Budget = 0  // no budget in a budget-capped region
	tenants[2].Budget = 99 // over the cap
	tenants[0].Budget = 5  // fine
	tenants[3].Budget = 5  // fine
	for i := range tenants {
		tenants[i].Deadline = 100 * time.Hour
	}

	sum, got := runService(t, env, bench, curves, tenants, Config{
		Shards: 2, MaxBudget: 10, MaxDeadline: 200 * time.Hour, Trace: true,
	})
	if sum.Admitted != 2 || sum.Rejected != 2 {
		t.Fatalf("admitted %d rejected %d, want 2/2", sum.Admitted, sum.Rejected)
	}
	for _, i := range []int{1, 2} {
		r := got[i]
		if r.Admitted || r.Reason != ReasonBudgetCap || r.Report != nil || r.Err != nil {
			t.Fatalf("tenant %s not cleanly rejected: %+v", r.Tenant.ID, r)
		}
	}
	for _, i := range []int{0, 3} {
		if r := got[i]; !r.Admitted || r.Report == nil {
			t.Fatalf("tenant %s should have run: %+v", r.Tenant.ID, r)
		}
	}
	ta := obs.AttributeTenants(sum.Trace)
	if ta.Admitted != 2 || ta.Rejected != 2 {
		t.Fatalf("trace attribution %+v", ta)
	}
	for _, row := range ta.Rows {
		if !row.Admitted && (row.NetCost != 0 || row.Done) {
			t.Fatalf("rejected tenant %s shows spend in the trace: %+v", row.Tenant, row)
		}
	}
	if ta.NetCost != sum.TotalCost {
		t.Fatalf("trace cost %.6f disagrees with summary %.6f", ta.NetCost, sum.TotalCost)
	}
}

// TestServiceWeightedFair pins the admission ordering: heavier tenants land
// in earlier waves, and results emit in admission order (descending weight,
// ties by submission).
func TestServiceWeightedFair(t *testing.T) {
	env, bench, curves := testWorld(t)
	// Weights 1,2,4,1,2,4 → weight-4 tenants (idx 2, 5) are admitted first.
	tenants := DefaultBattery(6, 53)
	_, got := runService(t, env, bench, curves, tenants, Config{
		Shards: 1, MaxInFlight: 2, Admission: AdmissionWeightedFair,
	})
	wantOrder := []int{2, 5, 1, 4, 0, 3}
	waveOf := map[string]int{}
	for i, r := range got {
		if r.Index != wantOrder[i] {
			t.Fatalf("results out of admission order at %d: got index %d, want %d", i, r.Index, wantOrder[i])
		}
		waveOf[r.Tenant.ID] = r.Wave
	}
	if waveOf["t-00002"] != 0 || waveOf["t-00005"] != 0 {
		t.Fatalf("weight-4 tenants not in wave 0: %v", waveOf)
	}
	if waveOf["t-00000"] != 2 || waveOf["t-00003"] != 2 {
		t.Fatalf("weight-1 tenants not in the last wave: %v", waveOf)
	}
}

// TestServiceTraceTenant pins the explain-this-tenant workflow: exactly the
// named tenant carries a full campaign flight recording.
func TestServiceTraceTenant(t *testing.T) {
	env, bench, curves := testWorld(t)
	tenants := DefaultBattery(3, 61)
	_, got := runService(t, env, bench, curves, tenants, Config{
		Shards: 2, TraceTenant: "t-00001",
	})
	for _, r := range got {
		if r.Tenant.ID == "t-00001" {
			if r.Trace == nil || r.Trace.Len() == 0 {
				t.Fatalf("traced tenant has no recording: %+v", r)
			}
			if r.Trace.Meta.Scenario != "service" || r.Trace.Meta.Replicate != 1 {
				t.Fatalf("trace meta not stamped: %+v", r.Trace.Meta)
			}
		} else if r.Trace != nil {
			t.Fatalf("untraced tenant %s has a recording", r.Tenant.ID)
		}
	}
}
