// Package service is the sharded multi-tenant world engine: it schedules
// thousands of concurrent tenant campaigns onto a small number of world
// shards, each shard owning one discrete-event clock, one shared spot-market
// capacity domain, and a run queue advanced cooperatively in next-event
// order.
//
// The shape deliberately inverts campaign.Sweep. A sweep runs independent
// campaigns in parallel, each inside its own private universe; the service
// runs co-resident campaigns inside one universe per shard, serialized by an
// arbiter token so their fleets can share — and contend for — the same
// per-type spot capacity and demand-priced market (cloudsim.CapacityDomain).
// With contention disabled the worlds decouple exactly, and per-tenant
// results are bit-identical to solo campaign runs for any shard count: the
// metamorphic pin the tests enforce.
//
// Memory is bounded per shard, not per tenant: one event-node pool and one
// curve-fit memo per shard, one ground-truth perf cache per in-flight slot,
// and results stream out through an in-order emitter exactly like the
// scenario matrix runner — a 10k-tenant day holds shard-count × in-flight
// state, never 10k campaign states.
package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"spottune/internal/campaign"
	"spottune/internal/cloudsim"
	"spottune/internal/core"
	"spottune/internal/earlycurve"
	"spottune/internal/invariants"
	"spottune/internal/market"
	"spottune/internal/obs"
	"spottune/internal/scenario"
	"spottune/internal/simclock"
	"spottune/internal/stats"
	"spottune/internal/trial"
	"spottune/internal/workload"
)

// Tenant is one customer's campaign request: identity, fair-share weight,
// and the campaign knobs the service forwards verbatim.
type Tenant struct {
	// ID names the tenant in results, traces, and admission events. Empty
	// defaults to "t-<submission index>".
	ID string
	// Weight is the fair-share weight (default 1): weighted-fair admission
	// orders tenants by ascending 1/Weight, so heavier tenants start
	// earlier within the same arrival batch.
	Weight float64
	// Theta is the campaign's cost/time knob (default 0.7).
	Theta float64
	// Seed drives the tenant's private trial and market randomness.
	Seed uint64
	// Policy/Tuner/Resilience are registry names, empty for defaults.
	Policy     string
	Tuner      string
	Resilience string
	// Deadline/Budget are the tenant's completion target and spend cap
	// (zero = unconstrained). Admission caps (Config.MaxBudget,
	// Config.MaxDeadline) audit these before the campaign ever runs.
	Deadline time.Duration
	Budget   float64
	// BaseType is the compatibility anchor forwarded to the campaign.
	BaseType string
}

// Admission policy names.
const (
	// AdmissionFIFO admits and starts tenants in submission order.
	AdmissionFIFO = "fifo"
	// AdmissionWeightedFair orders tenants by ascending 1/Weight (stride
	// virtual finish time), ties by submission order, before sharding.
	AdmissionWeightedFair = "weighted-fair"
)

// AdmissionNames lists the admission policies, sorted.
func AdmissionNames() []string { return []string{AdmissionFIFO, AdmissionWeightedFair} }

// Rejection reasons stamped on Result.Reason and tenant-reject events.
const (
	ReasonBudgetCap   = "budget-cap"
	ReasonDeadlineCap = "deadline-cap"
)

// Config tunes one service run.
type Config struct {
	// Shards is the number of independent world shards (default 1). Each
	// shard owns its own clock epoch, capacity domain, node pool, and fit
	// memo; tenants are assigned round-robin in admission order.
	Shards int
	// MaxInFlight caps concurrently-open campaigns per shard (default 8):
	// a shard runs its tenants in waves of this size, each wave sharing
	// one virtual clock epoch and one capacity domain.
	MaxInFlight int
	// Admission selects the ordering policy (default AdmissionFIFO).
	Admission string
	// MaxBudget, when positive, rejects tenants with no budget or a budget
	// above the cap (reason "budget-cap") — unconstrained tenants cannot
	// starve a capped region. MaxDeadline is the analogous deadline cap.
	MaxBudget   float64
	MaxDeadline time.Duration
	// Contention couples co-resident fleets: the shard's catalog is capped
	// at Capacity spot instances per type (default 4) and aggregate demand
	// lifts prices by SurgeSlope at full utilization. Off, every tenant
	// sees the environment's unlimited private market.
	Contention bool
	Capacity   int
	SurgeSlope float64
	// SkipInvariants disables the per-campaign invariant audit (the
	// throughput benchmark skips it; batteries keep it on).
	SkipInvariants bool
	// Trace records service-level admission/start/done events into
	// Summary.Trace, in deterministic submission order.
	Trace bool
	// TraceTenant names one tenant whose campaign runs fully flight-
	// recorded; its recording is attached to that tenant's Result — the
	// explain-this-tenant workflow.
	TraceTenant string
	// OnResult streams each tenant's Result in admission order (identical
	// to submission order under FIFO) from a single goroutine. Results are
	// not retained by the service; this is the only way to observe
	// per-tenant reports.
	OnResult func(Result)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.Admission == "" {
		c.Admission = AdmissionFIFO
	}
	if c.Contention && c.Capacity <= 0 {
		c.Capacity = 4
	}
	return c
}

// Result is one tenant's outcome, delivered in admission order (which is
// submission order under FIFO admission).
type Result struct {
	Tenant Tenant
	// Index is the tenant's submission position.
	Index int
	// Shard/Wave locate the run (rejected tenants carry the shard that
	// would have hosted them and Wave -1).
	Shard int
	Wave  int
	// Admitted is false when admission control refused the tenant; Reason
	// says why. Rejected tenants never construct a cluster, so they post
	// zero ledger entries by construction.
	Admitted bool
	Reason   string
	// Report is the campaign outcome (nil when rejected or failed).
	Report *core.Report
	// Violations are the tenant campaign's invariant-audit findings.
	Violations []invariants.Violation
	// Trace is the tenant's campaign flight recording (TraceTenant only).
	Trace *obs.Recording
	// Err is the campaign error, nil on success.
	Err error

	emit int // admission position: the emitter's ordering key
}

// Summary aggregates a service run without retaining per-tenant state.
type Summary struct {
	Tenants  int
	Admitted int
	Rejected int
	Failed   int
	Waves    int
	// Violations counts per-campaign invariant findings across tenants;
	// Capacity holds the cross-tenant capacity-oversubscription audit's
	// findings (one sweep per contended wave).
	Violations int
	Capacity   []invariants.Violation
	// Cost/JCTHours/RefundFrac sketch the per-tenant distributions.
	Cost       *stats.QuantileSketch
	JCTHours   *stats.QuantileSketch
	RefundFrac *stats.QuantileSketch
	// TotalCost sums net spend in submission order; CostGini is the
	// fairness of that spend across admitted, completed tenants.
	TotalCost float64
	CostGini  float64
	// Trace is the service-level recording (Config.Trace).
	Trace *obs.Recording
}

// pendingTenant is one admitted tenant scheduled onto a shard.
type pendingTenant struct {
	t     Tenant
	index int // submission index
	emit  int // admission position: the emitter's ordering key
	rank  int // admitted-only rank: the backpressure key
	wave  int
	slot  int // in-wave slot = per-shard PerfCache identity
}

// flow is the emitter-side backpressure valve: shards may not open a wave
// whose last admitted rank runs more than a window ahead of the admitted
// results already delivered, so the reorder buffer of campaign reports is
// bounded by the window instead of growing with cross-shard completion
// skew. Ranks stripe round-robin across shards, so the wave holding the
// minimum undelivered rank spans at most shards×in-flight ranks; the
// window is 2× that — it never deadlocks and rarely even blocks.
type flow struct {
	mu        sync.Mutex
	cond      *sync.Cond
	delivered int
}

func newFlow() *flow {
	f := &flow{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// advance publishes the delivery high-water mark (admitted results emitted).
func (f *flow) advance(n int) {
	f.mu.Lock()
	f.delivered = n
	f.mu.Unlock()
	f.cond.Broadcast()
}

// wait blocks until maxRank is within window of the delivery mark.
func (f *flow) wait(maxRank, window int) {
	f.mu.Lock()
	for maxRank-f.delivered >= window {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// shardState is the per-shard bounded working set: the event-node pool and
// fit memo persist across the shard's whole run; perf caches are per
// in-flight slot because ground-truth curves are world-keyed (a slot hosts
// one tenant per wave, so its cache is never shared mid-campaign).
type shardState struct {
	idx   int
	queue []pendingTenant
	pool  *simclock.NodePool
	memo  *earlycurve.FitMemo
	perf  []*trial.PerfCache
}

// Run executes the tenant battery against the environment and streams
// per-tenant results through cfg.OnResult in submission order.
func Run(env *campaign.Environment, bench *workload.Benchmark, curves workload.Curves, tenants []Tenant, cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	if env == nil || bench == nil {
		return nil, fmt.Errorf("service: nil environment or benchmark")
	}
	switch cfg.Admission {
	case AdmissionFIFO, AdmissionWeightedFair:
	default:
		return nil, fmt.Errorf("service: unknown admission policy %q (have %v)", cfg.Admission, AdmissionNames())
	}

	// Normalize tenant identities once so events, results, and traces agree.
	tens := make([]Tenant, len(tenants))
	copy(tens, tenants)
	for i := range tens {
		if tens[i].ID == "" {
			tens[i].ID = fmt.Sprintf("t-%d", i)
		}
		if tens[i].Weight <= 0 {
			tens[i].Weight = 1
		}
		if tens[i].Theta == 0 {
			tens[i].Theta = 0.7
		}
	}

	// Admission order: FIFO is submission order; weighted-fair sorts by
	// stride virtual finish time 1/Weight, ties by submission order, so
	// heavier tenants land in earlier waves.
	order := make([]int, len(tens))
	for i := range order {
		order[i] = i
	}
	if cfg.Admission == AdmissionWeightedFair {
		sort.SliceStable(order, func(a, b int) bool {
			fa, fb := 1/tens[order[a]].Weight, 1/tens[order[b]].Weight
			if fa != fb {
				return fa < fb
			}
			return order[a] < order[b]
		})
	}

	// Admission caps, shard assignment, and wave layout.
	shards := make([]*shardState, cfg.Shards)
	for s := range shards {
		shards[s] = &shardState{
			idx:  s,
			pool: simclock.NewNodePool(),
			memo: earlycurve.NewFitMemo(),
			perf: make([]*trial.PerfCache, cfg.MaxInFlight),
		}
		for k := range shards[s].perf {
			shards[s].perf[k] = trial.NewPerfCache()
		}
	}
	type decision struct {
		admitted bool
		reason   string
		shard    int
		wave     int
		emit     int // admission position: deterministic emission order
	}
	decisions := make([]decision, len(tens))
	next := 0 // admitted counter: shard round-robin position
	for pos, i := range order {
		t := tens[i]
		d := decision{shard: next % cfg.Shards, wave: -1, emit: pos}
		switch {
		case cfg.MaxBudget > 0 && (t.Budget <= 0 || t.Budget > cfg.MaxBudget):
			d.reason = ReasonBudgetCap
		case cfg.MaxDeadline > 0 && (t.Deadline <= 0 || t.Deadline > cfg.MaxDeadline):
			d.reason = ReasonDeadlineCap
		default:
			d.admitted = true
			sh := shards[d.shard]
			qpos := len(sh.queue)
			d.wave = qpos / cfg.MaxInFlight
			sh.queue = append(sh.queue, pendingTenant{
				t: t, index: i, emit: pos, rank: next, wave: d.wave, slot: qpos % cfg.MaxInFlight,
			})
			next++
		}
		decisions[i] = d
	}

	var rec *obs.Recording
	if cfg.Trace {
		rec = obs.NewRecording(obs.Meta{Scenario: "service", Workload: bench.Name})
		// Admission events in submission order: the decision set is a pure
		// function of (tenants, config), so the trace prefix is stable for
		// any shard count.
		for i, d := range decisions {
			if d.admitted {
				rec.Emit(obs.Event{VT: env.CampaignStart, Kind: obs.KindTenantAdmit,
					Trial: tens[i].ID, Label: cfg.Admission, A: tens[i].Weight, N: int64(d.shard)})
			} else {
				rec.Emit(obs.Event{VT: env.CampaignStart, Kind: obs.KindTenantReject,
					Trial: tens[i].ID, Label: d.reason, N: int64(d.shard)})
			}
		}
	}

	// The contended region: one capacity-capped catalog shared read-only by
	// every shard; each wave gets its own fresh demand domain.
	var capCat *market.Catalog
	if cfg.Contention {
		capCat = env.Catalog.WithCapacity(cfg.Capacity)
	}

	sum := &Summary{
		Tenants:    len(tens),
		Cost:       stats.NewQuantileSketch(stats.DefaultSketchAlpha),
		JCTHours:   stats.NewQuantileSketch(stats.DefaultSketchAlpha),
		RefundFrac: stats.NewQuantileSketch(stats.DefaultSketchAlpha),
		Trace:      rec,
	}
	var capMu sync.Mutex // guards sum.Capacity and sum.Waves (shard goroutines)

	// In-order emitter: results arrive from any shard, are parked by
	// admission position, and are delivered (callback, aggregation, service
	// trace) strictly in admission order from this one goroutine. The flow
	// valve keeps the reorder buffer bounded: no shard opens a wave more
	// than a window of emissions ahead of the delivery mark.
	fl := newFlow()
	window := 2 * cfg.Shards * cfg.MaxInFlight
	results := make(chan Result, 64)
	emitterDone := make(chan struct{})
	var costs []float64
	go func() {
		defer close(emitterDone)
		pending := make(map[int]Result)
		nextIdx := 0
		deliver := func(r Result) {
			switch {
			case !r.Admitted:
				sum.Rejected++
			case r.Err != nil:
				sum.Failed++
			case r.Report != nil:
				sum.Admitted++
				sum.Cost.Add(r.Report.NetCost)
				sum.JCTHours.Add(r.Report.JCT.Hours())
				if r.Report.GrossCost > 0 {
					sum.RefundFrac.Add(r.Report.Refund / r.Report.GrossCost)
				}
				sum.TotalCost += r.Report.NetCost
				costs = append(costs, r.Report.NetCost)
				if rec != nil {
					rec.Emit(obs.Event{VT: env.CampaignStart, Kind: obs.KindTenantStart,
						Trial: r.Tenant.ID, N: int64(r.Shard)})
					rec.Emit(obs.Event{VT: env.CampaignStart.Add(r.Report.JCT), Kind: obs.KindTenantDone,
						Trial: r.Tenant.ID, A: r.Report.NetCost, B: r.Report.JCT.Hours(), N: int64(r.Shard)})
				}
			}
			sum.Violations += len(r.Violations)
			if cfg.OnResult != nil {
				cfg.OnResult(r)
			}
		}
		admittedOut := 0
		for r := range results {
			pending[r.emit] = r
			for {
				r, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				nextIdx++
				if r.Admitted {
					admittedOut++
				}
				deliver(r)
			}
			fl.advance(admittedOut)
		}
	}()

	// Rejected tenants resolve immediately — no cluster, no ledger.
	for i, d := range decisions {
		if !d.admitted {
			results <- Result{Tenant: tens[i], Index: i, Shard: d.shard, Wave: -1, Reason: d.reason, emit: d.emit}
		}
	}

	var wg sync.WaitGroup
	for _, sh := range shards {
		if len(sh.queue) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			for lo := 0; lo < len(sh.queue); lo += cfg.MaxInFlight {
				hi := lo + cfg.MaxInFlight
				if hi > len(sh.queue) {
					hi = len(sh.queue)
				}
				fl.wait(sh.queue[hi-1].rank, window)
				caps := runWave(env, bench, curves, sh, sh.queue[lo:hi], capCat, cfg, results)
				capMu.Lock()
				sum.Waves++
				sum.Capacity = append(sum.Capacity, caps...)
				capMu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	close(results)
	<-emitterDone

	sum.CostGini = stats.Gini(costs)
	return sum, nil
}

// runWave executes one shard wave: a fresh clock epoch at the campaign
// start, a fresh capacity domain, and one goroutine per tenant serialized by
// the arbiter token in next-event order. Returns the wave's cross-tenant
// capacity audit findings (contention mode only).
func runWave(env *campaign.Environment, bench *workload.Benchmark, curves workload.Curves,
	sh *shardState, wave []pendingTenant, capCat *market.Catalog, cfg Config, results chan<- Result) []invariants.Violation {

	clk := simclock.NewVirtual(env.CampaignStart)
	clk.SetNodePool(sh.pool)
	world := &campaign.World{Clock: clk}
	if capCat != nil {
		world.Catalog = capCat
		world.Domain = cloudsim.NewCapacityDomain(cfg.SurgeSlope)
	}
	arb := newArbiter(len(wave), env.CampaignStart.UnixNano())
	clk.SetAdvanceGate(arb.gate)

	ledgers := make([]*cloudsim.Ledger, len(wave))
	var wg sync.WaitGroup
	for k := range wave {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			p := wave[k]
			arb.acquire(k)
			res := runTenant(env, bench, curves, sh, p, world, cfg, &ledgers[k])
			arb.finish(k)
			results <- res
		}(k)
	}
	arb.kick()
	wg.Wait()
	// Reclaim event nodes the wave scheduled but never fired (pending
	// revocations past campaign end) so the next wave reuses the slab.
	clk.SetAdvanceGate(nil)
	clk.ReleaseNodes()

	if capCat == nil {
		return nil
	}
	return invariants.CheckCapacity(capCat, ledgers)
}

// runTenant executes one tenant campaign inside the wave's shared world.
// It runs entirely under the arbiter token (yielding at every clock
// advance), so the shard's memo, the slot's perf cache, and the shared
// cluster state are never touched concurrently.
func runTenant(env *campaign.Environment, bench *workload.Benchmark, curves workload.Curves,
	sh *shardState, p pendingTenant, world *campaign.World, cfg Config, ledger **cloudsim.Ledger) Result {

	res := Result{Tenant: p.t, Index: p.index, Shard: sh.idx, Wave: p.wave, Admitted: true, emit: p.emit}
	opt := campaign.Options{
		Theta:      p.t.Theta,
		Seed:       p.t.Seed,
		Policy:     p.t.Policy,
		Tuner:      p.t.Tuner,
		Resilience: p.t.Resilience,
		Deadline:   p.t.Deadline,
		Budget:     p.t.Budget,
		BaseType:   p.t.BaseType,
		Trend:      &earlycurve.Predictor{Memo: sh.memo},
		PerfCache:  sh.perf[p.slot],
		World:      world,
		Trace:      cfg.TraceTenant != "" && cfg.TraceTenant == p.t.ID,
	}
	opt.Inspect = func(d *campaign.RunDetail) error {
		*ledger = d.Cluster.Ledger()
		if res.Trace = d.Trace; res.Trace != nil {
			res.Trace.Meta.Scenario = "service"
			res.Trace.Meta.Replicate = p.index
		}
		if !cfg.SkipInvariants {
			res.Violations = invariants.Check(scenario.StateFor(d))
		}
		return nil
	}
	res.Report, res.Err = env.RunPolicy(bench, curves, opt)
	return res
}

// DefaultBattery builds a deterministic n-tenant battery on the matrix
// runner's replicate-seed stream: thetas and fair-share weights cycle so
// admission and contention have texture, budgets and deadlines stay
// unconstrained. Tenant i is identical for every (n ≥ i, seed) pair, so
// batteries of different sizes share a prefix.
func DefaultBattery(n int, seed uint64) []Tenant {
	thetas := []float64{0.5, 0.7, 0.9}
	weights := []float64{1, 2, 4}
	out := make([]Tenant, n)
	for i := range out {
		out[i] = Tenant{
			ID:     fmt.Sprintf("t-%05d", i),
			Weight: weights[i%len(weights)],
			Theta:  thetas[i%len(thetas)],
			Seed:   scenario.ReplicateSeed(seed, i),
		}
	}
	return out
}
