package service

import (
	"sync"
	"time"
)

// Campaign states inside one wave's arbiter.
const (
	stWaiting int8 = iota // blocked (or about to block) on its grant channel
	stRunning             // holds the shard token and is executing
	stDone                // finished; never granted again
)

// arbiter serializes one wave of tenant campaigns over a shared virtual
// clock. Exactly one campaign holds the token at any moment; everyone else
// is parked on a buffered(1) grant channel. The scheduling rule is
// conservative next-event order: the token always goes to the waiting
// campaign with the minimum advance target (ties broken by wave slot), so
// the shared clock is globally nondecreasing and every tenant's events fire
// at their exact virtual due time — which is what makes contention-free
// shared-world results bit-identical to solo runs.
//
// The engine's advance gate has no caller identity, but it does not need
// one: execution is serialized, so whoever triggers the gate IS the current
// token holder.
type arbiter struct {
	mu     sync.Mutex
	state  []int8
	target []int64 // next-advance target, unix nanos
	grants []chan struct{}
	holder int
	live   int
}

// newArbiter parks n campaigns, all waiting at the wave epoch — before its
// first clock advance a campaign's "target" is the campaign start, so setup
// work (trial generation, policy construction, initial scheduling) runs in
// slot order before any virtual time passes.
func newArbiter(n int, epochNanos int64) *arbiter {
	a := &arbiter{
		state:  make([]int8, n),
		target: make([]int64, n),
		grants: make([]chan struct{}, n),
		holder: -1,
		live:   n,
	}
	for i := range a.grants {
		a.grants[i] = make(chan struct{}, 1)
		a.target[i] = epochNanos
	}
	return a
}

// pickLocked returns the waiting campaign with the minimum (target, slot),
// or -1 when none waits.
func (a *arbiter) pickLocked() int {
	best := -1
	for i, st := range a.state {
		if st != stWaiting {
			continue
		}
		if best == -1 || a.target[i] < a.target[best] {
			best = i
		}
	}
	return best
}

// grantLocked hands the token to slot i. The send never blocks: a waiting
// campaign's buffered(1) channel is always empty.
func (a *arbiter) grantLocked(i int) {
	a.state[i] = stRunning
	a.holder = i
	a.grants[i] <- struct{}{}
}

// kick starts the wave after every campaign goroutine has been launched.
func (a *arbiter) kick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i := a.pickLocked(); i >= 0 {
		a.grantLocked(i)
	}
}

// acquire blocks slot i until it is first granted the token.
func (a *arbiter) acquire(i int) { <-a.grants[i] }

// gate is installed as the shared engine's advance gate: the current holder
// wants to advance virtual time to target, so it yields the token to
// whoever's target is earliest (possibly itself) and blocks until the token
// comes back. By the grant rule, when it returns the clock has advanced at
// most to target.
func (a *arbiter) gate(target time.Time) {
	a.mu.Lock()
	i := a.holder
	a.state[i] = stWaiting
	a.target[i] = target.UnixNano()
	next := a.pickLocked()
	a.grantLocked(next)
	a.mu.Unlock()
	<-a.grants[i]
}

// finish retires slot i and passes the token on. All remaining live
// campaigns are necessarily waiting (only the holder can finish), so the
// hand-off never strands the wave.
func (a *arbiter) finish(i int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state[i] = stDone
	a.live--
	if a.live == 0 {
		a.holder = -1
		return
	}
	if next := a.pickLocked(); next >= 0 {
		a.grantLocked(next)
	}
}
