package invariants

import (
	"testing"
	"time"

	"spottune/internal/obs"
)

// soundTrace builds the flight recording that matches soundState exactly:
// one deploy/settlement pair per ledger record (same dollar values, same
// order), segments mirroring the report's attribution, and the campaign
// lifecycle events. keep filters events out (nil keeps everything), which is
// how the corruption cases below remove lifecycle pieces.
func soundTrace(keep func(obs.Event) bool) *obs.Recording {
	r := obs.NewRecording(obs.Meta{Tuner: "spottune", Policy: "spottune", Workload: "LoR", Seed: 1})
	emit := func(e obs.Event) {
		if keep == nil || keep(e) {
			r.Emit(e)
		}
	}
	emit(obs.Event{VT: t0, Kind: obs.KindCampaignStart, Type: "spottune", Label: "SpotTune", A: 0.7, N: 2})
	emit(obs.Event{VT: t0, Kind: obs.KindDeploy, Trial: "hp-1", Inst: "i-000001", Type: "a", Label: "spot", A: 0.05})
	emit(obs.Event{VT: t0.Add(28 * time.Minute), Kind: obs.KindNotice, Trial: "hp-1", Inst: "i-000001", Type: "a", N: 1})
	emit(obs.Event{VT: t0.Add(30 * time.Minute), Kind: obs.KindSegment, Trial: "hp-1", Inst: "i-000001", N: 10})
	emit(obs.Event{VT: t0.Add(30 * time.Minute), Kind: obs.KindPosting, Inst: "i-000001", Type: "a", Label: "revoked", A: 0.025, B: 0.025})
	emit(obs.Event{VT: t0.Add(30 * time.Minute), Kind: obs.KindRefund, Inst: "i-000001", Type: "a", A: 0.025})
	emit(obs.Event{VT: t0.Add(time.Hour), Kind: obs.KindDeploy, Trial: "hp-1", Inst: "i-000002", Type: "a", Label: "spot", A: 0.06, N: 10})
	emit(obs.Event{VT: t0.Add(3 * time.Hour), Kind: obs.KindSegment, Trial: "hp-1", Inst: "i-000002", N: 50})
	emit(obs.Event{VT: t0.Add(3 * time.Hour), Kind: obs.KindPosting, Inst: "i-000002", Type: "a", Label: "user-terminated", A: 0.11})
	emit(obs.Event{VT: t0.Add(3 * time.Hour), Kind: obs.KindDeploy, Trial: "hp-2", Inst: "i-000003", Type: "a", Label: "on-demand", A: 0.2})
	emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindSegment, Trial: "hp-2", Inst: "i-000003", N: 30})
	emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindPosting, Inst: "i-000003", Type: "a", Label: "user-terminated", A: 0.4, N: 1})
	emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindRank, Trial: "hp-1", A: 0.4, N: 1})
	emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindRank, Trial: "hp-2", A: 0.6, N: 2})
	emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindSelect, Trial: "hp-1", N: 1})
	emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindCampaignEnd, A: 0.51, B: 5, N: 9})
	return r
}

func TestSoundStateWithTracePasses(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(nil)
	if vs := Check(st); len(vs) != 0 {
		t.Fatalf("sound traced state rejected: %v", vs)
	}
}

func TestTraceMissingCampaignEnd(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(func(e obs.Event) bool { return e.Kind != obs.KindCampaignEnd })
	requireCode(t, Check(st), CodeTraceIncomplete)
}

func TestTraceMissingDeployIsUnattributed(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(func(e obs.Event) bool {
		return !(e.Kind == obs.KindDeploy && e.Inst == "i-000002")
	})
	vs := Check(st)
	requireCode(t, vs, CodeTraceUnattributed)
	// The dropped deploy also desyncs the deploy count from the report.
	requireCode(t, vs, CodeTraceIncomplete)
}

func TestTraceMissingPosting(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(func(e obs.Event) bool {
		return !(e.Kind == obs.KindPosting && e.Inst == "i-000002")
	})
	vs := Check(st)
	requireCode(t, vs, CodeTraceIncomplete)
	requireCode(t, vs, CodeTraceLedgerMismatch)
}

// TestTraceReconciliationIsBitwise pins the contract that separates the
// trace audit from the report audit: a 1e-12 perturbation of a posting is a
// million times smaller than the report checks' dust tolerance, yet the
// trace reconciliation must still reject it.
func TestTraceReconciliationIsBitwise(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(nil)
	evs := st.Trace.Events()
	for i := range evs {
		if evs[i].Kind == obs.KindPosting && evs[i].Inst == "i-000002" {
			evs[i].A += 1e-12
		}
	}
	vs := Check(st)
	requireCode(t, vs, CodeTraceLedgerMismatch)
	for _, v := range vs {
		if v.Code != CodeTraceLedgerMismatch {
			t.Fatalf("ulp perturbation tripped %s too: %v", v.Code, v)
		}
	}
}

// TestViolationsCarryEventContext: with a recording present, violations
// come back with the last-K trace events relevant to their subject.
func TestViolationsCarryEventContext(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(nil)
	st.Ledger.Records[1].GrossCost = -0.11
	st.Report.GrossCost = 0.315
	st.Report.NetCost = 0.29
	vs := Check(st)
	var hit *Violation
	for i := range vs {
		if vs[i].Code == CodeNegativeGross {
			hit = &vs[i]
		}
	}
	if hit == nil {
		t.Fatalf("negative gross not raised: %v", vs)
	}
	if hit.Instance != "i-000002" {
		t.Fatalf("violation subject %q, want i-000002", hit.Instance)
	}
	if len(hit.Events) == 0 {
		t.Fatal("violation carries no event context despite a recording")
	}
	if len(hit.Events) > violationContextK {
		t.Fatalf("%d context events, cap is %d", len(hit.Events), violationContextK)
	}
	// The context is the subject's own timeline: i-000002 belongs to hp-1,
	// so nothing from hp-2 (or its instance) may appear.
	for _, e := range hit.Events {
		if e.Trial == "hp-2" || e.Inst == "i-000003" {
			t.Fatalf("foreign event in context: %+v", e)
		}
	}
	// Without a recording the same corruption yields bare violations.
	st.Trace = nil
	for _, v := range Check(st) {
		if len(v.Events) != 0 {
			t.Fatalf("events attached without a recording: %v", v)
		}
	}
}

func requireCode(t *testing.T, vs []Violation, want Code) {
	t.Helper()
	for _, v := range vs {
		if v.Code == want {
			return
		}
	}
	t.Fatalf("code %s not raised; got %v", want, vs)
}
