package invariants

import (
	"testing"
	"time"

	"spottune/internal/cloudsim"
	"spottune/internal/core"
	"spottune/internal/earlycurve"
	"spottune/internal/market"
	"spottune/internal/trial"
)

var t0 = time.Date(2017, 5, 4, 0, 0, 0, 0, time.UTC)

type flatPerf struct{}

func (flatPerf) StepSeconds(market.InstanceType, string, int) float64 { return 1 }

func mkTrial(t *testing.T, id string, progress float64) *trial.Replay {
	t.Helper()
	tr, err := trial.NewReplay(id, 100, []earlycurve.MetricPoint{
		{Step: 50, Value: 0.5}, {Step: 100, Value: 0.4},
	}, flatPerf{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if progress > 0 {
		tr.RunFor(market.InstanceType{Name: "a", CPUs: 2}, progress, 100)
	}
	return tr
}

func ckptBlob(t *testing.T, id string, progress float64) []byte {
	t.Helper()
	tr := mkTrial(t, id, progress)
	blob, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// soundState builds a minimal internally consistent campaign state: one
// refunded first-hour spot revocation, one paid spot segment, one on-demand
// segment, sane selection outputs, and checkpoints strictly behind live
// trial progress.
func soundState(t *testing.T) State {
	t.Helper()
	cat := market.MustNewCatalog([]market.InstanceType{
		{Name: "a", CPUs: 2, MemoryGB: 8, OnDemandPrice: 0.2},
	})
	ledger := &cloudsim.Ledger{Records: []cloudsim.Usage{
		{
			InstanceID: "i-000001", TypeName: "a",
			Launched: t0, Ended: t0.Add(30 * time.Minute),
			End: cloudsim.EndRevoked, GrossCost: 0.025, Refunded: 0.025,
		},
		{
			InstanceID: "i-000002", TypeName: "a",
			Launched: t0.Add(time.Hour), Ended: t0.Add(3 * time.Hour),
			End: cloudsim.EndUserTerminated, GrossCost: 0.11,
		},
		{
			InstanceID: "i-000003", TypeName: "a", OnDemand: true,
			Launched: t0.Add(3 * time.Hour), Ended: t0.Add(5 * time.Hour),
			End: cloudsim.EndUserTerminated, GrossCost: 0.4,
		},
	}}
	rep := &core.Report{
		Approach:            "SpotTune",
		GrossCost:           0.535,
		Refund:              0.025,
		NetCost:             0.51,
		TotalSteps:          90,
		FreeSteps:           10,
		Deployments:         3,
		OnDemandDeployments: 1,
		Notices:             1,
		Revocations:         1,
		Segments: []core.SegmentRecord{
			{InstanceID: "i-000001", TrialID: "hp-1", Steps: 10},
			{InstanceID: "i-000002", TrialID: "hp-1", Steps: 50},
			{InstanceID: "i-000003", TrialID: "hp-2", Steps: 30},
		},
		PredictedFinals: map[string]float64{"hp-1": 0.4, "hp-2": 0.6},
		Ranked:          []string{"hp-1", "hp-2"},
		Top:             []string{"hp-1"},
		Best:            "hp-1",
	}
	return State{
		Ledger:  ledger,
		Report:  rep,
		Catalog: cat,
		Trials:  []*trial.Replay{mkTrial(t, "hp-1", 60), mkTrial(t, "hp-2", 30)},
		Checkpoints: map[string][]byte{
			"ckpt/hp-1": ckptBlob(t, "hp-1", 60),
			"ckpt/hp-2": ckptBlob(t, "hp-2", 30),
		},
	}
}

func TestSoundStatePasses(t *testing.T) {
	if vs := Check(soundState(t)); len(vs) != 0 {
		t.Fatalf("sound state rejected: %v", vs)
	}
}

// corruption mutates a sound state and names the exact code that mutation
// must raise.
type corruption struct {
	name   string
	want   Code
	mutate func(t *testing.T, st *State)
}

func TestEachCorruptionRaisesItsOwnCode(t *testing.T) {
	cases := []corruption{
		{"double refund", CodeRefundExceedsGross, func(t *testing.T, st *State) {
			st.Ledger.Records[0].Refunded = 2 * st.Ledger.Records[0].GrossCost
			st.Report.Refund = st.Ledger.Records[0].Refunded
			st.Report.NetCost = st.Report.GrossCost - st.Report.Refund
		}},
		{"refund after first hour", CodeLateRefund, func(t *testing.T, st *State) {
			st.Ledger.Records[0].Ended = t0.Add(cloudsim.RefundWindow + time.Minute)
		}},
		{"negative gross", CodeNegativeGross, func(t *testing.T, st *State) {
			st.Ledger.Records[1].GrossCost = -0.11
			st.Report.GrossCost = 0.315
			st.Report.NetCost = 0.29
		}},
		{"negative refund", CodeNegativeRefund, func(t *testing.T, st *State) {
			st.Ledger.Records[1].Refunded = -0.01
			st.Report.Refund = 0.015
			st.Report.NetCost = st.Report.GrossCost - 0.015
		}},
		{"partial refund", CodePartialRefund, func(t *testing.T, st *State) {
			st.Ledger.Records[0].Refunded = 0.01
			st.Report.Refund = 0.01
			st.Report.NetCost = st.Report.GrossCost - 0.01
		}},
		{"refund without revocation", CodeRefundNotRevoked, func(t *testing.T, st *State) {
			st.Ledger.Records[0].End = cloudsim.EndUserTerminated
			st.Report.Revocations = 0
		}},
		{"refund on on-demand", CodeRefundOnDemand, func(t *testing.T, st *State) {
			st.Ledger.Records[0].OnDemand = true
			st.Report.OnDemandDeployments = 2
			// The on-demand billing cross-check would also fire; keep the
			// gross consistent with the catalog price so only the refund
			// invariant trips.
			st.Ledger.Records[0].GrossCost = 0.1
			st.Ledger.Records[0].Refunded = 0.1
			st.Report.GrossCost = 0.61
			st.Report.Refund = 0.1
			st.Report.NetCost = 0.51
		}},
		{"ends before launch", CodeTimeTravel, func(t *testing.T, st *State) {
			st.Ledger.Records[1].Ended = t0.Add(-time.Hour)
			// Zero lifetime with steps would also (correctly) flag ghost
			// progress; drop the steps to isolate the time violation.
			st.Report.Segments[1].Steps = 0
			st.Report.TotalSteps = 40
		}},
		{"on-demand billing drift", CodeOnDemandBilling, func(t *testing.T, st *State) {
			st.Ledger.Records[2].GrossCost = 0.9
			st.Report.GrossCost = 1.035
			st.Report.NetCost = 1.01
		}},
		{"report/ledger divergence", CodeLedgerMismatch, func(t *testing.T, st *State) {
			st.Report.NetCost = 0.1
		}},
		{"deployments vs instances", CodeDeploymentMismatch, func(t *testing.T, st *State) {
			st.Report.Deployments = 5
		}},
		{"deployment counter never incremented", CodeDeploymentMismatch, func(t *testing.T, st *State) {
			// A zeroed counter against a non-empty ledger must flag, not
			// be treated as "deployments unrecorded".
			st.Report.Deployments = 0
			st.Report.OnDemandDeployments = 0
		}},
		{"revocation count drift", CodeRevocationMismatch, func(t *testing.T, st *State) {
			st.Report.Revocations = 2
			st.Report.Notices = 2
		}},
		{"revocation without notice", CodeNoticeDeficit, func(t *testing.T, st *State) {
			st.Report.Notices = 0
		}},
		{"ghost progress", CodeGhostProgress, func(t *testing.T, st *State) {
			st.Report.Segments[0].InstanceID = "i-999999"
			// FreeSteps drop with the refunded instance's steps.
			st.Report.FreeSteps = 0
		}},
		{"step sum drift", CodeStepMismatch, func(t *testing.T, st *State) {
			st.Report.TotalSteps = 500
		}},
		{"free step drift", CodeFreeStepMismatch, func(t *testing.T, st *State) {
			st.Report.FreeSteps = 33
		}},
		{"negative segment", CodeNegativeSteps, func(t *testing.T, st *State) {
			st.Report.Segments[2].Steps = -3
			st.Report.TotalSteps = 60
		}},
		{"checkpoint ahead of trial", CodeCheckpointAhead, func(t *testing.T, st *State) {
			st.Checkpoints["ckpt/hp-2"] = ckptBlob(t, "hp-2", 95)
		}},
		{"checkpoint under wrong key", CodeCheckpointForeign, func(t *testing.T, st *State) {
			st.Checkpoints["ckpt/hp-2"] = st.Checkpoints["ckpt/hp-1"]
		}},
		{"checkpoint garbage", CodeCheckpointCorrupt, func(t *testing.T, st *State) {
			st.Checkpoints["ckpt/hp-1"] = []byte{0xde, 0xad, 0xbe, 0xef}
		}},
		{"ranking not ascending", CodeRankingCorrupt, func(t *testing.T, st *State) {
			st.Report.Ranked = []string{"hp-2", "hp-1"}
		}},
		{"ranked trial without prediction", CodeRankingCorrupt, func(t *testing.T, st *State) {
			delete(st.Report.PredictedFinals, "hp-2")
			st.Report.Ranked = []string{"hp-1", "hp-3"}
		}},
		{"best outside ranking", CodeBestNotRanked, func(t *testing.T, st *State) {
			st.Report.Best = "hp-9"
		}},
		{"ranking wiped but selections survive", CodeRankingCorrupt, func(t *testing.T, st *State) {
			st.Report.Ranked = nil
		}},
		{"replacement weaker than base type", CodeIncompatibleReplacement, func(t *testing.T, st *State) {
			st.Catalog = market.MustNewCatalog([]market.InstanceType{
				{Name: "a", CPUs: 2, MemoryGB: 8, OnDemandPrice: 0.2},
				{Name: "weak", CPUs: 1, MemoryGB: 4, OnDemandPrice: 0.05},
			})
			st.Report.BaseType = "a"
			st.Ledger.Records[1].TypeName = "weak"
		}},
		{"base type outside the catalog", CodeIncompatibleReplacement, func(t *testing.T, st *State) {
			st.Report.BaseType = "zz"
		}},
		{"rented type outside the catalog under base", CodeIncompatibleReplacement, func(t *testing.T, st *State) {
			st.Report.BaseType = "a"
			st.Ledger.Records[1].TypeName = "mystery"
		}},
		{"checkpoint ahead without full snapshot elsewhere", CodeCheckpointAhead, func(t *testing.T, st *State) {
			// The checkpoint audit must not depend on every key being
			// present — a lone stale-future blob is enough.
			st.Checkpoints = map[string][]byte{"ckpt/hp-2": ckptBlob(t, "hp-2", 95)}
		}},
	}
	seen := map[Code]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := soundState(t)
			tc.mutate(t, &st)
			vs := Check(st)
			if len(vs) == 0 {
				t.Fatalf("corrupted state (%s) passed", tc.name)
			}
			found := false
			for _, v := range vs {
				if v.Code == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("want code %s, got %v", tc.want, vs)
			}
		})
		seen[tc.want] = true
	}
	// The suite must discriminate: distinct corruption classes map onto
	// distinct codes, not one catch-all.
	if len(seen) < 15 {
		t.Fatalf("only %d distinct codes exercised", len(seen))
	}
}

func TestNilStateRejected(t *testing.T) {
	if vs := Check(State{}); len(vs) == 0 {
		t.Fatal("empty state passed")
	}
}

func TestSegmentsOptionalForLegacyReports(t *testing.T) {
	st := soundState(t)
	st.Report.Segments = nil // legacy baseline runs carry no attribution
	if vs := Check(st); len(vs) != 0 {
		t.Fatalf("legacy report rejected: %v", vs)
	}
}

func TestBaseTypeCompatibilityPasses(t *testing.T) {
	// A sound state where every rented type satisfies the predicate stays
	// sound once the base type is declared (reflexivity: a == base).
	st := soundState(t)
	st.Report.BaseType = "a"
	if vs := Check(st); len(vs) != 0 {
		t.Fatalf("compatible state rejected: %v", vs)
	}
}
