package invariants

import (
	"testing"
	"time"

	"spottune/internal/obs"
)

// resilientState extends soundState with a recording that carries the
// resilience payloads: a poll-interval marker on campaign-start, checkpoint
// events stamped with their active cadence, a notice that lost a few steps
// within the cadence bound, a blackout-retry streak that ends in one give-up
// and one successful redeploy, a notice-window migration, and a single
// upward degradation transition under a deadline.
func resilientState(t *testing.T) State {
	t.Helper()
	st := soundState(t)
	st.Report.Deadline = 6 * time.Hour
	st.Report.JCT = 5 * time.Hour
	st.Report.LostSteps = 5
	st.Report.Migrations = 1
	st.Report.BlackoutRetries = map[string]int{"hp-1": 2, "hp-2": 1}
	st.Report.DegradationLevel = 1
	st.Report.DegradationTransitions = 1

	r := obs.NewRecording(obs.Meta{Tuner: "spottune", Policy: "spottune", Workload: "LoR", Seed: 1})
	// B on campaign-start is the poll interval in seconds — the marker that
	// this recording carries resilience payloads, and the detection slop the
	// lost-work bound allows on top of the cadence.
	r.Emit(obs.Event{VT: t0, Kind: obs.KindCampaignStart, Type: "spottune", Label: "SpotTune", A: 0.7, B: 60, N: 2})
	r.Emit(obs.Event{VT: t0, Kind: obs.KindDeploy, Trial: "hp-1", Inst: "i-000001", Type: "a", Label: "spot", A: 0.05})
	// Checkpoint 10 minutes in, cadence 20 minutes: the notice at minute 28
	// finds 18 minutes of exposure — inside cadence + poll slop.
	r.Emit(obs.Event{VT: t0.Add(10 * time.Minute), Kind: obs.KindCheckpoint, Trial: "hp-1", Inst: "i-000001", B: 1200})
	r.Emit(obs.Event{VT: t0.Add(28 * time.Minute), Kind: obs.KindNotice, Trial: "hp-1", Inst: "i-000001", Type: "a", B: 5, N: 1})
	r.Emit(obs.Event{VT: t0.Add(28 * time.Minute), Kind: obs.KindMigration, Trial: "hp-1", Type: "a", Label: "a", A: 120})
	r.Emit(obs.Event{VT: t0.Add(30 * time.Minute), Kind: obs.KindSegment, Trial: "hp-1", Inst: "i-000001", N: 10})
	r.Emit(obs.Event{VT: t0.Add(30 * time.Minute), Kind: obs.KindPosting, Inst: "i-000001", Type: "a", Label: "revoked", A: 0.025, B: 0.025})
	r.Emit(obs.Event{VT: t0.Add(30 * time.Minute), Kind: obs.KindRefund, Inst: "i-000001", Type: "a", A: 0.025})
	// Two blackout retries for hp-1, then a successful redeploy (streak
	// resets without a give-up).
	r.Emit(obs.Event{VT: t0.Add(40 * time.Minute), Kind: obs.KindBlackoutRetry, Trial: "hp-1", Type: "a", N: 1})
	r.Emit(obs.Event{VT: t0.Add(50 * time.Minute), Kind: obs.KindBlackoutRetry, Trial: "hp-1", Type: "a", N: 2})
	r.Emit(obs.Event{VT: t0.Add(time.Hour), Kind: obs.KindDeploy, Trial: "hp-1", Inst: "i-000002", Type: "a", Label: "spot", A: 0.06, N: 10})
	// hp-2 exhausts a one-retry budget and gives up; the give-up's attempt
	// count must equal its blackout-retry streak.
	r.Emit(obs.Event{VT: t0.Add(150 * time.Minute), Kind: obs.KindBlackoutRetry, Trial: "hp-2", Type: "a", N: 1})
	r.Emit(obs.Event{VT: t0.Add(155 * time.Minute), Kind: obs.KindGiveUp, Trial: "hp-2", Type: "a", N: 1})
	r.Emit(obs.Event{VT: t0.Add(160 * time.Minute), Kind: obs.KindDegradation, Label: "diversified-spot", A: 3600, N: 1})
	r.Emit(obs.Event{VT: t0.Add(3 * time.Hour), Kind: obs.KindSegment, Trial: "hp-1", Inst: "i-000002", N: 50})
	r.Emit(obs.Event{VT: t0.Add(3 * time.Hour), Kind: obs.KindPosting, Inst: "i-000002", Type: "a", Label: "user-terminated", A: 0.11})
	r.Emit(obs.Event{VT: t0.Add(3 * time.Hour), Kind: obs.KindDeploy, Trial: "hp-2", Inst: "i-000003", Type: "a", Label: "on-demand", A: 0.2})
	r.Emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindSegment, Trial: "hp-2", Inst: "i-000003", N: 30})
	r.Emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindPosting, Inst: "i-000003", Type: "a", Label: "user-terminated", A: 0.4, N: 1})
	r.Emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindRank, Trial: "hp-1", A: 0.4, N: 1})
	r.Emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindRank, Trial: "hp-2", A: 0.6, N: 2})
	r.Emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindSelect, Trial: "hp-1", N: 1})
	r.Emit(obs.Event{VT: t0.Add(5 * time.Hour), Kind: obs.KindCampaignEnd, A: 0.51, B: 5, N: 9})
	st.Trace = r
	return st
}

func TestResilientStatePasses(t *testing.T) {
	if vs := Check(resilientState(t)); len(vs) != 0 {
		t.Fatalf("sound resilient state rejected: %v", vs)
	}
}

// mutateEvents edits the recording's events in place.
func mutateEvents(st *State, f func(e *obs.Event)) {
	evs := st.Trace.Events()
	for i := range evs {
		f(&evs[i])
	}
}

func TestResilienceCorruptions(t *testing.T) {
	cases := []corruption{
		{"lost work beyond active cadence", CodeLostWorkBound, func(t *testing.T, st *State) {
			// Tighten the recorded cadence to 5 minutes: the 18 minutes of
			// exposure at the notice now exceeds cadence + poll slop.
			mutateEvents(st, func(e *obs.Event) {
				if e.Kind == obs.KindCheckpoint && e.Trial == "hp-1" {
					e.B = 300
				}
			})
		}},
		{"lost-step total drift", CodeLostWorkBound, func(t *testing.T, st *State) {
			st.Report.LostSteps = 99
		}},
		{"retry count drift", CodeRetryConservation, func(t *testing.T, st *State) {
			st.Report.BlackoutRetries["hp-1"] = 5
		}},
		{"phantom reported retries", CodeRetryConservation, func(t *testing.T, st *State) {
			st.Report.BlackoutRetries["hp-9"] = 1
		}},
		{"give-up overstates attempts", CodeRetryConservation, func(t *testing.T, st *State) {
			mutateEvents(st, func(e *obs.Event) {
				if e.Kind == obs.KindGiveUp {
					e.N = 7
				}
			})
		}},
		{"reported give-up without event", CodeRetryConservation, func(t *testing.T, st *State) {
			st.Report.GaveUp = []string{"hp-1"}
		}},
		{"deadline-missed flag wrong", CodeDeadlineAccounting, func(t *testing.T, st *State) {
			st.Report.DeadlineMissed = true // JCT 5h is inside the 6h deadline
		}},
		{"degradation without a deadline", CodeDeadlineAccounting, func(t *testing.T, st *State) {
			st.Report.Deadline = 0
		}},
		{"migration count drift", CodeDeadlineAccounting, func(t *testing.T, st *State) {
			st.Report.Migrations = 3
		}},
		{"degradation transition drift", CodeDeadlineAccounting, func(t *testing.T, st *State) {
			st.Report.DegradationTransitions = 2
			st.Report.DegradationLevel = 2
		}},
		{"ladder level regression", CodeDeadlineAccounting, func(t *testing.T, st *State) {
			// The recorded transition claims a downward move — the ladder is
			// strictly one-way.
			mutateEvents(st, func(e *obs.Event) {
				if e.Kind == obs.KindDegradation {
					e.N = -1
				}
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := resilientState(t)
			tc.mutate(t, &st)
			vs := Check(st)
			if len(vs) == 0 {
				t.Fatalf("corrupted state (%s) passed", tc.name)
			}
			found := false
			for _, v := range vs {
				if v.Code == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("want code %s, got %v", tc.want, vs)
			}
		})
	}
}

// TestLegacyTraceSkipsResilienceAudit pins the gating: recordings without
// the poll-interval marker (pre-resilience traces) skip the trace-replaying
// halves entirely, so legacy fixtures keep passing.
func TestLegacyTraceSkipsResilienceAudit(t *testing.T) {
	st := soundState(t)
	st.Trace = soundTrace(nil) // campaign-start carries no B payload
	st.Report.LostSteps = 42   // would trip the sum check if audited
	if vs := Check(st); len(vs) != 0 {
		t.Fatalf("legacy trace tripped the resilience audit: %v", vs)
	}
}
