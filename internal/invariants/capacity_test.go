package invariants

import (
	"strings"
	"testing"
	"time"

	"spottune/internal/cloudsim"
	"spottune/internal/market"
)

func capCatalog(capacity int) *market.Catalog {
	return market.MustNewCatalog([]market.InstanceType{
		{Name: "r4.large", CPUs: 2, MemoryGB: 15, OnDemandPrice: 0.133, Capacity: capacity},
		{Name: "m4.2xlarge", CPUs: 8, MemoryGB: 32, OnDemandPrice: 0.4},
	})
}

func usage(typeName string, onDemand bool, start time.Time, fromMin, toMin int) cloudsim.Usage {
	return cloudsim.Usage{
		InstanceID: "i",
		TypeName:   typeName,
		OnDemand:   onDemand,
		Launched:   start.Add(time.Duration(fromMin) * time.Minute),
		Ended:      start.Add(time.Duration(toMin) * time.Minute),
	}
}

// TestCheckCapacity pins the sweep-line audit: overlapping cross-tenant spot
// lifetimes beyond the cap are a violation; back-to-back replacement at the
// same instant, on-demand rentals, and uncapped types are not.
func TestCheckCapacity(t *testing.T) {
	start := time.Date(2017, 5, 4, 0, 0, 0, 0, time.UTC)
	cat := capCatalog(2)

	// Two tenants, three overlapping r4.large spot instances at minute 20
	// against capacity 2 — only detectable across ledgers.
	la := &cloudsim.Ledger{Records: []cloudsim.Usage{
		usage("r4.large", false, start, 0, 60),
		usage("r4.large", false, start, 10, 30),
	}}
	lb := &cloudsim.Ledger{Records: []cloudsim.Usage{
		usage("r4.large", false, start, 20, 40),
	}}
	vs := CheckCapacity(cat, []*cloudsim.Ledger{la, lb})
	if len(vs) != 1 {
		t.Fatalf("%d violations, want 1: %v", len(vs), vs)
	}
	if vs[0].Code != CodeCapacityOversubscription {
		t.Fatalf("code %q", vs[0].Code)
	}
	if !strings.Contains(vs[0].Detail, "r4.large: 3 live") {
		t.Fatalf("detail %q, want peak 3 on r4.large", vs[0].Detail)
	}

	// Same instant hand-off: [0,30) then [30,60) twice over is exactly at
	// cap at every instant — the half-open treatment must not flag it.
	ok := &cloudsim.Ledger{Records: []cloudsim.Usage{
		usage("r4.large", false, start, 0, 30),
		usage("r4.large", false, start, 0, 30),
		usage("r4.large", false, start, 30, 60),
		usage("r4.large", false, start, 30, 60),
	}}
	if vs := CheckCapacity(cat, []*cloudsim.Ledger{ok}); len(vs) != 0 {
		t.Fatalf("hand-off at capacity flagged: %v", vs)
	}

	// On-demand rentals and uncapped types are exempt however many overlap.
	exempt := &cloudsim.Ledger{Records: []cloudsim.Usage{
		usage("r4.large", true, start, 0, 60),
		usage("r4.large", true, start, 0, 60),
		usage("r4.large", true, start, 0, 60),
		usage("m4.2xlarge", false, start, 0, 60),
		usage("m4.2xlarge", false, start, 0, 60),
		usage("m4.2xlarge", false, start, 0, 60),
	}}
	if vs := CheckCapacity(cat, []*cloudsim.Ledger{exempt}); len(vs) != 0 {
		t.Fatalf("exempt records flagged: %v", vs)
	}

	// Nil catalog / nil ledgers are quietly sound.
	if vs := CheckCapacity(nil, []*cloudsim.Ledger{la}); vs != nil {
		t.Fatalf("nil catalog returned %v", vs)
	}
	if vs := CheckCapacity(cat, []*cloudsim.Ledger{nil}); vs != nil {
		t.Fatalf("nil ledger returned %v", vs)
	}
}
