package invariants

import (
	"fmt"
	"sort"

	"spottune/internal/cloudsim"
	"spottune/internal/market"
)

// CodeCapacityOversubscription: at some virtual instant, the spot instances
// of one type running across every tenant in a shared capacity domain
// exceeded the catalog's per-type Capacity. The cluster enforces the cap at
// request time; this audit replays the settled ledgers and proves the
// enforcement never leaked — the multi-tenant service runs it per shard wave.
const CodeCapacityOversubscription Code = "capacity-oversubscription"

// CheckCapacity audits spot capacity conservation across a set of tenant
// ledgers sharing one region: for every capped instance type (Capacity > 0)
// the number of simultaneously live spot instances — counted over the
// half-open [Launched, Ended) lifetime of every settled record, all tenants
// together — must never exceed the cap. On-demand records are exempt
// (capacity caps are a spot-tier construct here), as are uncapped types.
// At most one violation is reported per type: the earliest oversubscribed
// instant, with the peak concurrency observed there.
func CheckCapacity(cat *market.Catalog, ledgers []*cloudsim.Ledger) []Violation {
	if cat == nil {
		return nil
	}
	type edge struct {
		atNanos int64
		delta   int
	}
	edges := map[string][]edge{}
	for _, l := range ledgers {
		if l == nil {
			continue
		}
		for _, u := range l.Records {
			if u.OnDemand {
				continue
			}
			it, ok := cat.Lookup(u.TypeName)
			if !ok || it.Capacity <= 0 {
				continue
			}
			edges[u.TypeName] = append(edges[u.TypeName],
				edge{u.Launched.UnixNano(), +1}, edge{u.Ended.UnixNano(), -1})
		}
	}
	names := make([]string, 0, len(edges))
	for name := range edges {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Violation
	for _, name := range names {
		es := edges[name]
		// Ends sort before same-instant launches: a lifetime is half-open,
		// so an instance replaced at the exact settlement instant is not a
		// double occupancy.
		sort.Slice(es, func(i, j int) bool {
			if es[i].atNanos != es[j].atNanos {
				return es[i].atNanos < es[j].atNanos
			}
			return es[i].delta < es[j].delta
		})
		it, _ := cat.Lookup(name)
		live, peak, firstNanos := 0, 0, int64(0)
		for _, e := range es {
			live += e.delta
			if live > it.Capacity && live > peak {
				if peak <= it.Capacity {
					firstNanos = e.atNanos
				}
				peak = live
			}
		}
		if peak > it.Capacity {
			out = append(out, Violation{
				Code: CodeCapacityOversubscription,
				Detail: fmt.Sprintf("%s: %d live spot instances at unix-nanos %d exceeds capacity %d",
					name, peak, firstNanos, it.Capacity),
			})
		}
	}
	return out
}
