// Package invariants validates cross-cutting simulator properties on the
// final state of a campaign run. Every scenario-matrix cell passes through
// Check, turning the whole matrix into a self-verifying test bed: a policy
// or fault-injection change that breaks the economics (a double refund, a
// refund outside the first hour, steps attributed to an instance that never
// ran) fails loudly instead of silently skewing a figure.
//
// Each violated property yields a Violation with a distinct Code, so tests
// can assert not just that a corrupted state is rejected but that it is
// rejected for the right reason. When the run carried a flight recording
// (State.Trace), every violation additionally carries the last few trace
// events relevant to its subject — the simulator's own account of what led
// up to the broken state.
package invariants

import (
	"fmt"
	"math"

	"spottune/internal/cloudsim"
	"spottune/internal/core"
	"spottune/internal/market"
	"spottune/internal/obs"
	"spottune/internal/trial"
)

// Code identifies one invariant class.
type Code string

// Invariant codes. Grouped by the simulator property they guard.
const (
	// Ledger conservation (per-record billing arithmetic).
	CodeNegativeGross      Code = "negative-gross"       // GrossCost < 0
	CodeRefundExceedsGross Code = "refund-exceeds-gross" // Refunded > GrossCost (double refund)
	CodeNegativeRefund     Code = "negative-refund"      // Refunded < 0
	CodePartialRefund      Code = "partial-refund"       // 0 < Refunded < GrossCost (rule is all-or-nothing)
	CodeLateRefund         Code = "late-refund"          // refund outside the first instance hour
	CodeRefundNotRevoked   Code = "refund-not-revoked"   // refund on a user-terminated instance
	CodeRefundOnDemand     Code = "refund-on-demand"     // refund on reliable capacity
	CodeTimeTravel         Code = "ends-before-launch"   // Ended before Launched
	CodeOnDemandBilling    Code = "on-demand-billing"    // gross deviates from catalog price x lifetime

	// Report/ledger reconciliation (campaign accounting).
	CodeLedgerMismatch     Code = "ledger-report-mismatch" // report totals disagree with the ledger
	CodeDeploymentMismatch Code = "deployment-mismatch"    // deployments != ledger instances
	CodeRevocationMismatch Code = "revocation-mismatch"    // report revocations != ledger revocations
	CodeNoticeDeficit      Code = "notice-deficit"         // revocation without a preceding notice

	// Step attribution (no ghost progress).
	CodeGhostProgress    Code = "ghost-progress"       // steps on an instance the ledger never saw
	CodeStepMismatch     Code = "step-accounting"      // segment steps do not sum to TotalSteps
	CodeFreeStepMismatch Code = "free-step-accounting" // FreeSteps != steps on refunded instances
	CodeNegativeSteps    Code = "negative-steps"       // a segment with negative step count

	// Checkpoint-restore monotonicity.
	CodeCheckpointAhead   Code = "checkpoint-ahead-of-trial" // stored progress exceeds live progress
	CodeCheckpointForeign Code = "checkpoint-foreign"        // blob names a different trial than its key
	CodeCheckpointCorrupt Code = "checkpoint-corrupt"        // blob fails to decode
	CodeProgressOverrun   Code = "progress-overrun"          // trial beyond its MaxSteps

	// Policy accounting consistency (selection outputs).
	CodeRankingCorrupt Code = "ranking-corrupt" // ranking is not a permutation ordered by prediction
	CodeBestNotRanked  Code = "best-not-ranked" // selected best absent from the ranking

	// Catalog compatibility (diversified fleets). Only audited when the
	// report names a base type and the state carries the catalog.
	CodeIncompatibleReplacement Code = "incompatible-replacement" // a rented type weaker than the campaign's base type

	// Trace/ledger reconciliation (flight-recorder accounting). Only
	// audited when the run carried a recording.
	CodeTraceLedgerMismatch Code = "trace-ledger-mismatch" // trace-attributed totals not bit-identical to the ledger
	CodeTraceUnattributed   Code = "trace-unattributed"    // a posting's instance has no deploy event
	CodeTraceIncomplete     Code = "trace-incomplete"      // trace is missing settlement or lifecycle events

	// Resilience accounting (recovery-strategy bookkeeping). The trace
	// halves only fire on recordings that carry the resilience payloads
	// (campaign-start B = poll seconds > 0).
	CodeLostWorkBound      Code = "lost-work-bound"           // work lost at a revocation exceeds the active checkpoint cadence
	CodeRetryConservation  Code = "retry-budget-conservation" // blackout retries / give-ups disagree between trace and report
	CodeDeadlineAccounting Code = "deadline-accounting"       // deadline, ladder, or migration bookkeeping inconsistent
)

// Violation is one broken invariant. Trial and Instance, when non-empty,
// name the simulated entities the violation is about; Events, when the run
// carried a flight recording, holds the last few trace events relevant to
// that subject (chronological, ending at the campaign's final event).
type Violation struct {
	Code     Code
	Detail   string
	Trial    string
	Instance string
	Events   []obs.Event
}

// Error renders the violation as "code: detail".
func (v Violation) Error() string { return fmt.Sprintf("%s: %s", v.Code, v.Detail) }

// State is the final simulator state of one campaign run. Ledger and Report
// are required; the remaining fields widen coverage when present:
// Checkpoints enables the checkpoint-monotonicity audit (keys are
// object-store keys "ckpt/<trial>"), Trials enables progress bounds, Catalog
// enables on-demand billing cross-checks, and Trace enables the
// flight-recorder reconciliation audit plus per-violation event context.
type State struct {
	Ledger      *cloudsim.Ledger
	Report      *core.Report
	Trials      []*trial.Replay
	Catalog     *market.Catalog
	Checkpoints map[string][]byte
	Trace       *obs.Recording
}

// costTol absorbs float dust in USD sums; billing is exact arithmetic over
// trace integrals, so anything beyond dust is a real conservation failure.
const costTol = 1e-6

// violationContextK is how many trailing trace events attach to each
// violation — enough to see the deploy/notice/posting run-up without
// ballooning cell output.
const violationContextK = 8

// Check validates every invariant the state's fields allow and returns all
// violations found (nil when the state is sound).
func Check(st State) []Violation {
	c := &collector{}
	if st.Ledger == nil || st.Report == nil {
		c.add(CodeLedgerMismatch, "state needs both a ledger and a report")
		return c.out
	}

	checkLedger(st, c)
	checkReconciliation(st, c)
	checkSegments(st, c)
	checkCheckpoints(st, c)
	checkSelection(st, c)
	checkCompatibility(st, c)
	checkTrace(st, c)
	checkResilience(st, c)
	if st.Trace != nil && len(c.out) > 0 {
		q := obs.NewTraceQuery(st.Trace)
		for i := range c.out {
			v := &c.out[i]
			v.Events = q.LastK(v.Trial, v.Instance, violationContextK)
		}
	}
	return c.out
}

// collector accumulates violations. add records a campaign-level violation;
// addFor additionally names the trial and/or instance the violation is
// about, which is what the trace-context attachment keys on.
type collector struct{ out []Violation }

func (c *collector) add(code Code, format string, args ...any) {
	c.addFor(code, "", "", format, args...)
}

func (c *collector) addFor(code Code, trialID, instID string, format string, args ...any) {
	c.out = append(c.out, Violation{
		Code:     code,
		Detail:   fmt.Sprintf(format, args...),
		Trial:    trialID,
		Instance: instID,
	})
}

// checkLedger audits per-record billing arithmetic: net = gross − refunds,
// and refunds exist only on first-hour spot revocations, in full.
func checkLedger(st State, c *collector) {
	for _, u := range st.Ledger.Records {
		if u.Ended.Before(u.Launched) {
			c.addFor(CodeTimeTravel, "", u.InstanceID, "instance %s ended %v before launch %v", u.InstanceID, u.Ended, u.Launched)
		}
		if u.GrossCost < 0 {
			c.addFor(CodeNegativeGross, "", u.InstanceID, "instance %s gross %v", u.InstanceID, u.GrossCost)
		}
		if u.Refunded < 0 {
			c.addFor(CodeNegativeRefund, "", u.InstanceID, "instance %s refund %v", u.InstanceID, u.Refunded)
			continue
		}
		if u.Refunded == 0 {
			continue
		}
		if u.Refunded > u.GrossCost+costTol {
			c.addFor(CodeRefundExceedsGross, "", u.InstanceID, "instance %s refunded %v of gross %v", u.InstanceID, u.Refunded, u.GrossCost)
			continue
		}
		// The first-hour rule is all-or-nothing.
		if u.Refunded < u.GrossCost-costTol {
			c.addFor(CodePartialRefund, "", u.InstanceID, "instance %s refunded %v of gross %v", u.InstanceID, u.Refunded, u.GrossCost)
		}
		if u.OnDemand {
			c.addFor(CodeRefundOnDemand, "", u.InstanceID, "instance %s is on-demand yet refunded %v", u.InstanceID, u.Refunded)
		}
		if u.End != cloudsim.EndRevoked {
			c.addFor(CodeRefundNotRevoked, "", u.InstanceID, "instance %s refunded but ended %v", u.InstanceID, u.End)
		}
		if u.Duration() > cloudsim.RefundWindow {
			c.addFor(CodeLateRefund, "", u.InstanceID, "instance %s refunded after %v of life (window %v)",
				u.InstanceID, u.Duration(), cloudsim.RefundWindow)
		}
	}
	if st.Catalog != nil {
		for _, u := range st.Ledger.Records {
			if !u.OnDemand {
				continue
			}
			it, ok := st.Catalog.Lookup(u.TypeName)
			if !ok {
				continue
			}
			want := it.OnDemandPrice * u.Duration().Hours()
			if math.Abs(u.GrossCost-want) > costTol+1e-9*want {
				c.addFor(CodeOnDemandBilling, "", u.InstanceID, "instance %s gross %v, want %v (%v for %v)",
					u.InstanceID, u.GrossCost, want, it.OnDemandPrice, u.Duration())
			}
		}
	}
}

// checkReconciliation ties the report's campaign totals back to the ledger.
func checkReconciliation(st State, c *collector) {
	led, rep := st.Ledger, st.Report
	if d := math.Abs(rep.GrossCost - led.TotalGross()); d > costTol {
		c.add(CodeLedgerMismatch, "report gross %v vs ledger %v", rep.GrossCost, led.TotalGross())
	}
	if d := math.Abs(rep.Refund - led.TotalRefunded()); d > costTol {
		c.add(CodeLedgerMismatch, "report refund %v vs ledger %v", rep.Refund, led.TotalRefunded())
	}
	if d := math.Abs(rep.NetCost - (rep.GrossCost - rep.Refund)); d > costTol {
		c.add(CodeLedgerMismatch, "report net %v vs gross-refund %v", rep.NetCost, rep.GrossCost-rep.Refund)
	}
	revoked, onDemand := 0, 0
	for _, u := range led.Records {
		if u.End == cloudsim.EndRevoked {
			revoked++
		}
		if u.OnDemand {
			onDemand++
		}
	}
	if rep.Deployments != len(led.Records) {
		// Every deployment rents exactly one instance, and a settled
		// campaign has ended them all — a zeroed counter against a
		// non-empty ledger is exactly the corruption this catches.
		c.add(CodeDeploymentMismatch, "report deployments %d vs ledger instances %d", rep.Deployments, len(led.Records))
	}
	if rep.OnDemandDeployments != onDemand {
		c.add(CodeDeploymentMismatch, "report on-demand deployments %d vs ledger %d", rep.OnDemandDeployments, onDemand)
	}
	if rep.Revocations != revoked {
		c.add(CodeRevocationMismatch, "report revocations %d vs ledger %d", rep.Revocations, revoked)
	}
	if rep.Revocations > rep.Notices {
		// Both market revocations and injected mass preemptions deliver
		// the two-minute notice first.
		c.add(CodeNoticeDeficit, "%d revocations but only %d notices", rep.Revocations, rep.Notices)
	}
}

// checkSegments audits step attribution: all progress ran on instances the
// ledger saw alive, and the free-step split matches the refund split. Skipped
// when the report carries no attribution (legacy baseline runs).
func checkSegments(st State, c *collector) {
	rep := st.Report
	if rep.Segments == nil {
		return
	}
	usage := make(map[string]cloudsim.Usage, len(st.Ledger.Records))
	for _, u := range st.Ledger.Records {
		usage[u.InstanceID] = u
	}
	total, free := 0, 0
	for _, seg := range rep.Segments {
		if seg.Steps < 0 {
			c.addFor(CodeNegativeSteps, seg.TrialID, seg.InstanceID, "segment %s/%s has %d steps", seg.InstanceID, seg.TrialID, seg.Steps)
			continue
		}
		total += seg.Steps
		u, ok := usage[seg.InstanceID]
		if !ok {
			if seg.Steps > 0 {
				c.addFor(CodeGhostProgress, seg.TrialID, seg.InstanceID, "segment %s/%s ran %d steps on an instance the ledger never saw",
					seg.InstanceID, seg.TrialID, seg.Steps)
			}
			continue
		}
		if seg.Steps > 0 && !u.Ended.After(u.Launched) {
			c.addFor(CodeGhostProgress, seg.TrialID, seg.InstanceID, "segment %s/%s ran %d steps on an instance with zero lifetime",
				seg.InstanceID, seg.TrialID, seg.Steps)
		}
		if u.Refunded > 0 {
			free += seg.Steps
		}
	}
	if total != rep.TotalSteps {
		c.add(CodeStepMismatch, "segments sum to %d steps, report says %d", total, rep.TotalSteps)
	}
	if free != rep.FreeSteps {
		c.add(CodeFreeStepMismatch, "refunded segments sum to %d steps, report says %d", free, rep.FreeSteps)
	}
}

// checkCheckpoints audits checkpoint-restore monotonicity: every persisted
// blob decodes, names the trial its key claims, and holds progress at or
// behind the live trial (a checkpoint is a photograph of the past).
func checkCheckpoints(st State, c *collector) {
	// Progress bounds need only the trials — they must not hide behind the
	// optional checkpoint snapshot. (Replay trials clamp RunFor/Restore at
	// MaxSteps, so this is unreachable for them; it guards future trial
	// implementations without that property.)
	for _, tr := range st.Trials {
		if tr.Progress() > float64(tr.MaxSteps())+1e-9 {
			c.addFor(CodeProgressOverrun, tr.ID(), "", "trial %s at %v of max %d steps", tr.ID(), tr.Progress(), tr.MaxSteps())
		}
	}
	if st.Checkpoints == nil {
		return
	}
	byID := make(map[string]*trial.Replay, len(st.Trials))
	for _, tr := range st.Trials {
		byID[tr.ID()] = tr
	}
	for key, blob := range st.Checkpoints {
		id, progress, err := trial.DecodeCheckpoint(blob)
		if err != nil {
			c.add(CodeCheckpointCorrupt, "key %s: %v", key, err)
			continue
		}
		if want := "ckpt/" + id; key != want {
			c.addFor(CodeCheckpointForeign, id, "", "key %s holds a checkpoint for trial %q", key, id)
			continue
		}
		tr, ok := byID[id]
		if !ok {
			continue // a trial outside this run's set; nothing to compare
		}
		if progress > tr.Progress()+1e-9 {
			c.addFor(CodeCheckpointAhead, id, "", "trial %s stored progress %v ahead of live %v", id, progress, tr.Progress())
		}
		if progress < 0 || math.IsNaN(progress) || progress > float64(tr.MaxSteps()) {
			c.addFor(CodeCheckpointCorrupt, id, "", "trial %s stored progress %v outside [0, %d]", id, progress, tr.MaxSteps())
		}
	}
}

// checkSelection audits the policy-facing outputs: the ranking is a
// permutation of the predicted set ordered by predicted value, and the
// selected best was actually ranked.
func checkSelection(st State, c *collector) {
	rep := st.Report
	if len(rep.Ranked) == 0 {
		// An empty ranking is legitimate only on a report with no
		// selection outputs at all; a wiped ranking alongside surviving
		// predictions or a selected best is a selection bug.
		if len(rep.PredictedFinals) > 0 || rep.Best != "" || len(rep.Top) > 0 {
			c.add(CodeRankingCorrupt, "empty ranking with %d predictions, best %q, %d top",
				len(rep.PredictedFinals), rep.Best, len(rep.Top))
		}
		return
	}
	if len(rep.Ranked) != len(rep.PredictedFinals) {
		c.add(CodeRankingCorrupt, "%d ranked vs %d predictions", len(rep.Ranked), len(rep.PredictedFinals))
		return
	}
	seen := make(map[string]bool, len(rep.Ranked))
	for i, id := range rep.Ranked {
		if seen[id] {
			c.addFor(CodeRankingCorrupt, id, "", "trial %s ranked twice", id)
			return
		}
		seen[id] = true
		v, ok := rep.PredictedFinals[id]
		if !ok {
			c.addFor(CodeRankingCorrupt, id, "", "ranked trial %s has no prediction", id)
			return
		}
		if i > 0 {
			prev := rep.PredictedFinals[rep.Ranked[i-1]]
			if v < prev {
				c.addFor(CodeRankingCorrupt, id, "", "ranking not ascending at %s (%v after %v)", id, v, prev)
				return
			}
		}
	}
	if rep.Best != "" && !seen[rep.Best] {
		c.addFor(CodeBestNotRanked, rep.Best, "", "best %q absent from ranking", rep.Best)
	}
	for _, id := range rep.Top {
		if !seen[id] {
			c.addFor(CodeBestNotRanked, id, "", "top trial %q absent from ranking", id)
		}
	}
}

// checkCompatibility audits the catalog's compatibility predicate: when the
// campaign declared a base type, every instance the ledger saw rented — spot
// replacement or on-demand fallback alike — must be at least as powerful as
// it. A weaker replacement would silently slow the very trials diversified
// provisioning exists to protect. Needs both the base type and the catalog;
// a base type the catalog does not know is itself a violation.
func checkCompatibility(st State, c *collector) {
	rep := st.Report
	if rep.BaseType == "" || st.Catalog == nil {
		return
	}
	base, ok := st.Catalog.Lookup(rep.BaseType)
	if !ok {
		c.add(CodeIncompatibleReplacement, "base type %q not in the catalog", rep.BaseType)
		return
	}
	for _, u := range st.Ledger.Records {
		it, ok := st.Catalog.Lookup(u.TypeName)
		if !ok {
			c.addFor(CodeIncompatibleReplacement, "", u.InstanceID,
				"instance %s rented type %q outside the catalog under base type %q", u.InstanceID, u.TypeName, rep.BaseType)
			continue
		}
		if !it.AtLeastAsPowerful(base) {
			c.addFor(CodeIncompatibleReplacement, "", u.InstanceID,
				"instance %s rented %s (%d CPUs, %gGB, %g eff. cores), weaker than base %s (%d CPUs, %gGB, %g eff. cores)",
				u.InstanceID, it.Name, it.CPUs, it.MemoryGB, it.EffectiveCPUs(),
				base.Name, base.CPUs, base.MemoryGB, base.EffectiveCPUs())
		}
	}
}

// checkTrace reconciles the flight recording against the ledger and report.
// Posting events are emitted at the exact moment the cluster appends each
// ledger record, so the trace-attributed grand totals must equal the ledger
// totals bit for bit — same values summed in the same order — not merely
// within tolerance. Skipped when the run carried no recording.
func checkTrace(st State, c *collector) {
	if st.Trace == nil {
		return
	}
	led, rep := st.Ledger, st.Report
	att := obs.Attribute(st.Trace)
	if att.Postings != len(led.Records) {
		c.add(CodeTraceIncomplete, "trace settled %d postings, ledger holds %d records", att.Postings, len(led.Records))
	}
	if math.Float64bits(att.Gross) != math.Float64bits(led.TotalGross()) {
		c.add(CodeTraceLedgerMismatch, "trace gross %v (bits %016x) vs ledger %v (bits %016x)",
			att.Gross, math.Float64bits(att.Gross), led.TotalGross(), math.Float64bits(led.TotalGross()))
	}
	if math.Float64bits(att.Refunded) != math.Float64bits(led.TotalRefunded()) {
		c.add(CodeTraceLedgerMismatch, "trace refunded %v (bits %016x) vs ledger %v (bits %016x)",
			att.Refunded, math.Float64bits(att.Refunded), led.TotalRefunded(), math.Float64bits(led.TotalRefunded()))
	}
	if math.Float64bits(att.Net) != math.Float64bits(led.TotalNet()) {
		c.add(CodeTraceLedgerMismatch, "trace net %v (bits %016x) vs ledger %v (bits %016x)",
			att.Net, math.Float64bits(att.Net), led.TotalNet(), math.Float64bits(led.TotalNet()))
	}
	if att.UnattributedPostings > 0 {
		c.add(CodeTraceUnattributed, "%d postings ($%v gross) on instances with no deploy event",
			att.UnattributedPostings, att.Unattributed)
	}
	deploys, ends := 0, 0
	for _, e := range st.Trace.Events() {
		switch e.Kind {
		case obs.KindDeploy:
			deploys++
		case obs.KindCampaignEnd:
			ends++
		}
	}
	if deploys != rep.Deployments {
		c.add(CodeTraceIncomplete, "trace recorded %d deploys, report says %d", deploys, rep.Deployments)
	}
	if ends != 1 {
		c.add(CodeTraceIncomplete, "trace holds %d campaign-end events, want exactly 1", ends)
	}
}

// checkResilience audits the recovery-strategy bookkeeping. The report-only
// deadline consistency checks always run (they are vacuous on legacy
// reports); the trace-replaying halves — lost-work bounds, retry-budget
// conservation, ladder monotonicity — need a recording whose campaign-start
// event carries the poll-interval payload (B > 0), the marker of a trace
// that records resilience events at all.
func checkResilience(st State, c *collector) {
	rep := st.Report

	// Deadline accounting is pure report arithmetic.
	missed := rep.Deadline > 0 && rep.JCT > rep.Deadline
	if rep.DeadlineMissed != missed {
		c.add(CodeDeadlineAccounting, "report says deadline missed=%v, but JCT %v vs deadline %v says %v",
			rep.DeadlineMissed, rep.JCT, rep.Deadline, missed)
	}
	if rep.Deadline <= 0 && (rep.DegradationLevel != 0 || rep.DegradationTransitions != 0) {
		c.add(CodeDeadlineAccounting, "no deadline set, yet degradation level %d after %d transitions",
			rep.DegradationLevel, rep.DegradationTransitions)
	}
	if rep.DegradationLevel > rep.DegradationTransitions {
		// The ladder starts at level 0 and each transition climbs exactly
		// one rung, so the final level can never exceed the climb count.
		c.add(CodeDeadlineAccounting, "degradation level %d exceeds its %d transitions",
			rep.DegradationLevel, rep.DegradationTransitions)
	}

	if st.Trace == nil {
		return
	}
	// Replay the recording once, tracking per trial: the protection anchor
	// (the virtual time of the latest checkpoint/restore/deploy — the point
	// work after which is at risk), the active checkpoint cadence (B of the
	// latest checkpoint event), and the blackout-retry streak since the last
	// deploy (what a give-up's attempt count must equal).
	var pollSecs float64
	anchor := map[string]struct {
		vt  obs.Event
		set bool
	}{}
	cadence := map[string]float64{}
	streak := map[string]int{}
	retries := map[string]int{}
	giveUps := map[string]int{}
	migrations, degradations := 0, 0
	lostTotal := 0
	lastLevel := int64(-1)
	for _, e := range st.Trace.Events() {
		switch e.Kind {
		case obs.KindCampaignStart:
			pollSecs = e.B
		case obs.KindDeploy:
			anchor[e.Trial] = struct {
				vt  obs.Event
				set bool
			}{e, true}
			streak[e.Trial] = 0
		case obs.KindRestore, obs.KindCheckpoint:
			anchor[e.Trial] = struct {
				vt  obs.Event
				set bool
			}{e, true}
			if e.Kind == obs.KindCheckpoint && e.B > 0 {
				cadence[e.Trial] = e.B
			}
		case obs.KindNotice:
			if e.B <= 0 {
				continue
			}
			lostTotal += int(e.B)
			cad, an := cadence[e.Trial], anchor[e.Trial]
			if pollSecs <= 0 || cad <= 0 || !an.set {
				continue
			}
			// Work is unprotected for at most one cadence plus one poll
			// interval (polling-mode detection lag) between checkpoints;
			// a notice that finds more than that exposed means the
			// strategy's schedule was not honored.
			if exposed := e.VT.Sub(an.vt.VT).Seconds(); exposed > cad+pollSecs+costTol {
				c.addFor(CodeLostWorkBound, e.Trial, e.Inst,
					"trial %s lost %d steps after %.0fs unprotected; active cadence %.0fs (+%.0fs poll slop)",
					e.Trial, int(e.B), exposed, cad, pollSecs)
			}
		case obs.KindBlackoutRetry:
			retries[e.Trial]++
			streak[e.Trial]++
		case obs.KindGiveUp:
			giveUps[e.Trial]++
			if int(e.N) != streak[e.Trial] {
				c.addFor(CodeRetryConservation, e.Trial, "",
					"give-up on %s claims %d attempts, trace shows %d blackout retries since its last deploy",
					e.Trial, e.N, streak[e.Trial])
			}
			streak[e.Trial] = 0
		case obs.KindMigration:
			migrations++
		case obs.KindDegradation:
			degradations++
			if e.N <= lastLevel {
				c.add(CodeDeadlineAccounting, "degradation ladder moved from level %d to %d (one-way, strictly up)",
					lastLevel, e.N)
			}
			lastLevel = e.N
		}
	}
	if pollSecs <= 0 {
		return // recording predates the resilience payloads
	}
	if lostTotal != rep.LostSteps {
		c.add(CodeLostWorkBound, "trace notices lost %d steps total, report says %d", lostTotal, rep.LostSteps)
	}
	for id, n := range retries {
		if got := rep.BlackoutRetries[id]; got != n {
			c.addFor(CodeRetryConservation, id, "",
				"trial %s: trace shows %d blackout retries, report says %d", id, n, got)
		}
	}
	for id, n := range rep.BlackoutRetries {
		if retries[id] != n {
			c.addFor(CodeRetryConservation, id, "",
				"trial %s: report claims %d blackout retries, trace shows %d", id, n, retries[id])
		}
	}
	for _, id := range rep.GaveUp {
		if giveUps[id] == 0 {
			c.addFor(CodeRetryConservation, id, "",
				"report says trial %s gave up, but the trace holds no give-up event for it", id)
		}
	}
	if migrations != rep.Migrations {
		c.add(CodeDeadlineAccounting, "trace holds %d migration events, report says %d", migrations, rep.Migrations)
	}
	if degradations != rep.DegradationTransitions {
		c.add(CodeDeadlineAccounting, "trace holds %d degradation events, report says %d transitions",
			degradations, rep.DegradationTransitions)
	}
	if degradations > 0 && lastLevel != int64(rep.DegradationLevel) {
		c.add(CodeDeadlineAccounting, "trace ends at degradation level %d, report says %d", lastLevel, rep.DegradationLevel)
	}
}
