GO ?= go

.PHONY: all vet build test test-short bench bench-campaign ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Heavy trainings and multi-seed sweeps are guarded by testing.Short().
test-short:
	$(GO) test -short ./...

# Runs every benchmark once and exports the cross-policy provisioning study
# as BENCH_policy.json (the CI benchmark-smoke artifact).
bench:
	$(GO) test -bench=. -run '^$$' -benchtime 1x .
	$(GO) run ./cmd/benchfigs -fig none -quick -out results -policyjson BENCH_policy.json

bench-campaign:
	$(GO) test -bench 'BenchmarkCampaign' -run '^$$' -benchtime 5x .

ci: vet build test-short bench-campaign
