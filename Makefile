GO ?= go

# Total -short coverage recorded when the scenario engine landed; the cover
# target (and CI's coverage lane) fail if the suite drops below it.
COVER_FLOOR ?= 73.0

.PHONY: all vet build test test-short bench bench-campaign bench-obs trace scenarios storm service fuzz cover ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Heavy trainings and multi-seed sweeps are guarded by testing.Short().
test-short:
	$(GO) test -short ./...

# Runs every benchmark once, exports the cross-policy provisioning study as
# BENCH_policy.json and the cross-tuner search-strategy study as
# BENCH_tuner.json (cost/JCT per registered tuner), carves the streaming
# matrix runner's numbers (1k- and 100k-cell grids: cells/s + peak heap)
# into BENCH_matrix.json, and re-measures the micro benchmarks with
# -benchmem into BENCH_perf.json (ns/op + allocs/op, diffed against the
# committed pre-optimization baseline in BENCH_baseline.json — benchperf
# prints the delta table and fails the recipe when any tracked benchmark
# regresses past its threshold; the CI lane runs at 20% because shared
# 1–2 core runners jitter close to the 10% default). All JSON artifacts
# are uploaded by CI.
# Benchmark output goes through temp files, not pipes, so a failing
# benchmark binary fails the recipe instead of being masked by benchperf's
# exit status.
bench:
	$(GO) test -bench=. -run '^$$' -benchtime 1x . > BENCH_all.txt
	cat BENCH_all.txt
	grep '^BenchmarkMatrixStreaming' BENCH_all.txt | $(GO) run ./cmd/benchperf -out BENCH_matrix.json
	rm -f BENCH_all.txt
	$(GO) test -bench '^(BenchmarkLSTMForwardBackward|BenchmarkRevPredInference|BenchmarkEarlyCurveFit|BenchmarkMarketGenerate|BenchmarkEventQueue|BenchmarkGBTRound)$$' -run '^$$' -benchmem -benchtime 100x . > BENCH_perf.txt
	$(GO) run ./cmd/benchperf -baseline BENCH_baseline.json -threshold 0.2 -out BENCH_perf.json < BENCH_perf.txt
	rm -f BENCH_perf.txt
	$(GO) run ./cmd/benchfigs -fig none -quick -out results -policyjson BENCH_policy.json -tunerjson BENCH_tuner.json

bench-campaign:
	$(GO) test -bench 'BenchmarkCampaign' -run '^$$' -benchtime 5x .

# Flight-recorder overhead lane: the same campaign with and without a live
# recording, gated at 5% through benchperf's ratio check (BENCH_obs.json).
# The disabled path is covered separately by the zero-alloc Nop-tracer test
# in internal/obs.
bench-obs:
	$(GO) test -bench '^(BenchmarkCampaignTraced|BenchmarkCampaignUntraced)$$' -run '^$$' -benchmem -benchtime 50x . > BENCH_obs.txt
	$(GO) run ./cmd/benchperf -ratio CampaignTraced,CampaignUntraced -maxratio 1.05 -out BENCH_obs.json < BENCH_obs.txt
	rm -f BENCH_obs.txt

# Golden trace artifact: the -quick battery with the flight recorder on.
# results/battery.jsonl is the deterministic JSONL trace (byte-identical
# across runs and worker counts), results/battery.jsonl.trace.json the
# chrome://tracing form. The event schema itself is pinned by the committed
# fixture internal/obs/testdata/schema.golden.json (TestSchemaGolden fails
# on any drift).
trace:
	$(GO) run ./cmd/scenarios -quick -out results -trace results/battery.jsonl -trace-format all

# The full scenario x tuner x policy matrix at quick fidelity: every regime
# and fault scenario crossed with every registered tuner (search strategy)
# and every registered policy, invariant-audited, per-cell CSV in
# results/scenarios.csv. Exits non-zero on any violation — the rung-heavy
# hyperband/successive-halving cells are the checkpoint-churn stress lane.
# The second lane smokes the streaming path: a replicated grid through the
# seed axis with live progress and aggregate percentiles only.
scenarios:
	$(GO) run ./cmd/scenarios -quick -tuners all -out results
	$(GO) run ./cmd/scenarios -quick -scenarios baseline,calm -replicates 25 -stream

# Chaos storm battery: the seeded adversarial fault schedules (revocation
# storms, blackout fronts, mid-notice blackouts, mixed) crossed with every
# tuner and every recovery strategy, invariant-audited — the resilience
# layer's acceptance lane. Exits non-zero on any violation; battery-wide
# survival rate, lost-work percentiles, and degradation transitions land in
# results/BENCH_resilience.json (uploaded by CI). Same -chaos-seed, same
# storm: a violating schedule replays bit-identically.
storm:
	$(GO) run ./cmd/scenarios -quick -storm all -chaos-seed 1 -tuners all -strategies all \
		-out results/storm -resiliencejson results/BENCH_resilience.json

# Sharded multi-tenant service lane. First the throughput benchmark: 1k and
# 10k tenants through the world engine with contention on (campaigns/s, peak
# heap, cost p99); the benchmark itself fails if the 10k-tenant peak heap
# exceeds 2x the 1k figure — the bounded-memory gate — and the numbers land
# in BENCH_service.json (uploaded by CI). Then a 1k-tenant contention
# battery through cmd/scenarios: shared per-type capacity, surge pricing,
# weighted-fair admission, audited by the capacity-oversubscription
# invariant — exits non-zero on any violation. Same temp-file discipline as
# bench: a failing benchmark binary fails the recipe.
service:
	$(GO) test -bench '^BenchmarkServiceThroughput$$' -run '^$$' -benchtime 1x . > BENCH_service.txt
	grep '^BenchmarkServiceThroughput' BENCH_service.txt | $(GO) run ./cmd/benchperf -out BENCH_service.json
	rm -f BENCH_service.txt
	$(GO) run ./cmd/scenarios -quick -tenants 1000 -shards 8 -admission weighted-fair

# Native fuzz targets, run briefly (CI runs the same lane). Corpus finds are
# committed under the packages' testdata/fuzz directories.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTraceCSVRoundTrip -fuzztime 10s ./internal/market
	$(GO) test -run '^$$' -fuzz FuzzCatalog -fuzztime 10s ./internal/market
	$(GO) test -run '^$$' -fuzz FuzzCheckpointCodec -fuzztime 10s ./internal/trial
	$(GO) test -run '^$$' -fuzz FuzzChaosSchedule -fuzztime 10s ./internal/scenario

# Coverage gate: total -short statement coverage must stay at or above
# COVER_FLOOR (the level recorded when the scenario engine landed).
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	  { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

ci: vet build test-short bench-campaign bench-obs scenarios storm service
