GO ?= go

# Total -short coverage recorded when the scenario engine landed; the cover
# target (and CI's coverage lane) fail if the suite drops below it.
COVER_FLOOR ?= 73.0

.PHONY: all vet build test test-short bench bench-campaign scenarios fuzz cover ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Heavy trainings and multi-seed sweeps are guarded by testing.Short().
test-short:
	$(GO) test -short ./...

# Runs every benchmark once, exports the cross-policy provisioning study as
# BENCH_policy.json and the cross-tuner search-strategy study as
# BENCH_tuner.json (cost/JCT per registered tuner), and re-measures the
# micro benchmarks with -benchmem into BENCH_perf.json (ns/op + allocs/op,
# diffed against the committed pre-optimization baseline in
# BENCH_baseline.json). All JSON artifacts are uploaded by CI.
# The micro-bench output goes through a temp file, not a pipe, so a failing
# benchmark binary fails the recipe instead of being masked by benchperf's
# exit status.
bench:
	$(GO) test -bench=. -run '^$$' -benchtime 1x .
	$(GO) test -bench '^(BenchmarkLSTMForwardBackward|BenchmarkRevPredInference|BenchmarkEarlyCurveFit|BenchmarkMarketGenerate|BenchmarkEventQueue|BenchmarkGBTRound)$$' -run '^$$' -benchmem -benchtime 100x . > BENCH_perf.txt
	$(GO) run ./cmd/benchperf -baseline BENCH_baseline.json -out BENCH_perf.json < BENCH_perf.txt
	rm -f BENCH_perf.txt
	$(GO) run ./cmd/benchfigs -fig none -quick -out results -policyjson BENCH_policy.json -tunerjson BENCH_tuner.json

bench-campaign:
	$(GO) test -bench 'BenchmarkCampaign' -run '^$$' -benchtime 5x .

# The full scenario x tuner x policy matrix at quick fidelity: every regime
# and fault scenario crossed with every registered tuner (search strategy)
# and every registered policy, invariant-audited, per-cell CSV in
# results/scenarios.csv. Exits non-zero on any violation — the rung-heavy
# hyperband/successive-halving cells are the checkpoint-churn stress lane.
scenarios:
	$(GO) run ./cmd/scenarios -quick -tuners all -out results

# Native fuzz targets, run briefly (CI runs the same lane). Corpus finds are
# committed under the packages' testdata/fuzz directories.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTraceCSVRoundTrip -fuzztime 10s ./internal/market
	$(GO) test -run '^$$' -fuzz FuzzCheckpointCodec -fuzztime 10s ./internal/trial

# Coverage gate: total -short statement coverage must stay at or above
# COVER_FLOOR (the level recorded when the scenario engine landed).
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	  { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

ci: vet build test-short bench-campaign scenarios
