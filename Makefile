GO ?= go

.PHONY: all vet build test test-short bench bench-campaign ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Heavy trainings and multi-seed sweeps are guarded by testing.Short().
test-short:
	$(GO) test -short ./...

# Runs every benchmark once, exports the cross-policy provisioning study as
# BENCH_policy.json, and re-measures the micro benchmarks with -benchmem
# into BENCH_perf.json (ns/op + allocs/op, diffed against the committed
# pre-optimization baseline in BENCH_baseline.json). Both JSON
# artifacts are uploaded by CI.
# The micro-bench output goes through a temp file, not a pipe, so a failing
# benchmark binary fails the recipe instead of being masked by benchperf's
# exit status.
bench:
	$(GO) test -bench=. -run '^$$' -benchtime 1x .
	$(GO) test -bench '^(BenchmarkLSTMForwardBackward|BenchmarkRevPredInference|BenchmarkEarlyCurveFit|BenchmarkMarketGenerate|BenchmarkEventQueue|BenchmarkGBTRound)$$' -run '^$$' -benchmem -benchtime 100x . > BENCH_perf.txt
	$(GO) run ./cmd/benchperf -baseline BENCH_baseline.json -out BENCH_perf.json < BENCH_perf.txt
	rm -f BENCH_perf.txt
	$(GO) run ./cmd/benchfigs -fig none -quick -out results -policyjson BENCH_policy.json

bench-campaign:
	$(GO) test -bench 'BenchmarkCampaign' -run '^$$' -benchtime 5x .

ci: vet build test-short bench-campaign
