package spottune

// One benchmark per table/figure of the paper's evaluation (§IV), plus
// micro-benchmarks of the core substrates. Figure benchmarks run the same
// experiment code as cmd/benchfigs at reduced scale and report the headline
// quantities via b.ReportMetric, so `go test -bench` regenerates the
// paper-facing numbers. Experiment fixtures (market generation, predictor
// training — built lazily by the memoizing Context on first use) are warmed
// by one untimed run before b.ResetTimer, so ns/op measures the experiment,
// not fixture assembly:
//
//	go test -bench=Fig -benchmem
//
// Full-fidelity runs (real training, trained RevPred) are produced by
// `go run ./cmd/benchfigs -fig all`; see EXPERIMENTS.md.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"spottune/internal/campaign"
	"spottune/internal/cloudsim"
	"spottune/internal/core"
	"spottune/internal/earlycurve"
	"spottune/internal/experiments"
	"spottune/internal/market"
	"spottune/internal/mltrain"
	"spottune/internal/nn"
	"spottune/internal/obs"
	"spottune/internal/revpred"
	"spottune/internal/scenario"
	"spottune/internal/service"
	"spottune/internal/simclock"
	"spottune/internal/trial"

	"math/rand/v2"
)

func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:      1,
		Scale:     0.2,
		Quick:     true,
		Workloads: []string{"LoR", "ResNet"},
	}
}

// BenchmarkFig1SpotPrices regenerates the Fig. 1 trace (11 days of the
// spiky r3.xlarge market).
func BenchmarkFig1SpotPrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.Options{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Records)), "records")
	}
}

// BenchmarkFig5Curves records the example validation-loss curves with the
// real pure-Go trainers.
func BenchmarkFig5Curves(b *testing.B) {
	ctx := experiments.NewContext(experiments.Options{Seed: 1, Scale: 0.2, Workloads: []string{"LoR", "ResNet"}})
	if _, err := experiments.Fig5(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.ResNet)), "resnet_points")
	}
}

// BenchmarkFig6Profiling samples the performance matrix (the COV < 0.1
// online-profiling claim of §IV-A5).
func BenchmarkFig6Profiling(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	if _, err := experiments.Fig6(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].COV, "cov")
	}
}

// BenchmarkFig7Campaign runs the four-approach cost/JCT/PCR comparison on
// two workloads at reduced scale.
func BenchmarkFig7Campaign(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	if _, err := experiments.Fig7(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		pcr := experiments.PCRNormalized(rows)
		b.ReportMetric(pcr["LoR"][experiments.ApproachCheapest], "pcr_cheapest_vs_st07")
		for _, r := range rows {
			if r.Workload == "LoR" && r.Approach == experiments.ApproachSpotTune07 {
				b.ReportMetric(r.Cost, "st07_cost_usd")
				b.ReportMetric(r.JCTHours, "st07_jct_hours")
			}
		}
	}
}

// BenchmarkFig8ThetaSweep sweeps θ over one workload.
func BenchmarkFig8ThetaSweep(b *testing.B) {
	ctx := experiments.NewContext(experiments.Options{
		Seed: 1, Scale: 0.15, Quick: true, Workloads: []string{"LoR"},
	})
	if _, _, err := experiments.Fig8(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, acc, err := experiments.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(acc[len(acc)-1].Top3, "top3_at_theta1")
	}
}

// BenchmarkFig9Refund measures the refunded-resource contribution at θ=0.7.
func BenchmarkFig9Refund(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	if _, err := experiments.Fig7(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		f9 := experiments.Fig9(rows)
		sum := 0.0
		for _, r := range f9 {
			sum += r.FreeFraction
		}
		b.ReportMetric(sum/float64(len(f9)), "mean_free_frac")
	}
}

// BenchmarkFig10RevPred trains and scores the three revocation predictors
// on every market (tiny capacity).
func BenchmarkFig10RevPred(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	if _, err := experiments.Fig10(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RevPred.Accuracy(), "revpred_acc")
		b.ReportMetric(res.Tributary.Accuracy(), "tributary_acc")
	}
}

// BenchmarkFig11EarlyCurve compares EarlyCurve and SLAQ across the 16
// ResNet configurations.
func BenchmarkFig11EarlyCurve(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	if _, err := experiments.Fig11(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var ec, slaq float64
		for _, r := range res.Rows {
			ec += r.EarlyErr
			slaq += r.SLAQErr
		}
		n := float64(len(res.Rows))
		b.ReportMetric(ec/n, "earlycurve_err")
		b.ReportMetric(slaq/n, "slaq_err")
	}
}

// BenchmarkFig12Checkpoint measures checkpoint-restore overhead share.
func BenchmarkFig12Checkpoint(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	if _, err := experiments.Fig7(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		f12 := experiments.Fig12(rows)
		sum := 0.0
		for _, r := range f12 {
			sum += r.OverheadFrac
		}
		b.ReportMetric(sum/float64(len(f12)), "mean_overhead_frac")
	}
}

// BenchmarkCrossPolicy runs the cross-policy provisioning study (every
// registered policy on one workload through campaign.Sweep) and reports the
// per-policy headline costs — the numbers `make bench` exports to
// BENCH_policy.json.
func BenchmarkCrossPolicy(b *testing.B) {
	ctx := experiments.NewContext(experiments.Options{
		Seed: 1, Scale: 0.15, Quick: true, Workloads: []string{"LoR"},
	})
	if _, err := experiments.CrossPolicy(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CrossPolicy(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "policies")
		for _, r := range rows {
			switch r.Policy {
			case PolicySpotTune:
				b.ReportMetric(r.Cost, "spottune_cost_usd")
			case PolicyOnDemand:
				b.ReportMetric(r.Cost, "on_demand_cost_usd")
			case PolicyMixedFleet:
				b.ReportMetric(float64(r.OnDemandDeployments), "mixed_fleet_od_deploys")
			}
		}
	}
}

// BenchmarkCrossTuner measures the search-strategy comparison study: every
// registered tuner on one workload under the spottune policy, fanned out
// through campaign.Sweep.
func BenchmarkCrossTuner(b *testing.B) {
	ctx := experiments.NewContext(experiments.Options{
		Seed: 1, Scale: 0.15, Quick: true, Workloads: []string{"LoR"},
	})
	if _, err := experiments.CrossTuner(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CrossTuner(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "tuners")
		for _, r := range rows {
			switch r.Tuner {
			case TunerSpotTune:
				b.ReportMetric(r.Cost, "spottune_cost_usd")
			case TunerFullTrain:
				b.ReportMetric(r.Cost, "full_train_cost_usd")
			case TunerHyperband:
				b.ReportMetric(float64(r.Notices), "hyperband_notices")
			}
		}
	}
}

// ---------------------------------------------------------------- micro

// BenchmarkMarketGenerate measures synthetic trace generation (one market,
// one day).
func BenchmarkMarketGenerate(b *testing.B) {
	it, _ := market.DefaultCatalog().Lookup("r3.xlarge")
	spec := market.MarketSpec{Type: it}
	start := campaign.DefaultStart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := market.Generate(spec, start, start.Add(24*time.Hour), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMForwardBackward measures one RevPred-shaped LSTM training
// step (59 timesteps, 6 features, hidden 24, depth 3) through the reusable
// BPTT workspace, exactly as revpred.Train drives it.
func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	l := nn.NewStackedLSTM("b", 6, 24, 3, rng)
	xs := make([][]float64, 59)
	for t := range xs {
		xs[t] = make([]float64, 6)
		for j := range xs[t] {
			xs[t][j] = rng.Float64()
		}
	}
	ws := nn.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		hs, cache := l.ForwardSeqWS(ws, xs)
		last := hs[len(hs)-1]
		l.BackwardSeqWS(ws, cache, nn.LastHiddenGradWS(ws, 59, 24, last))
	}
}

// BenchmarkEarlyCurveFit measures one staged fit over a 200-point two-stage
// curve.
func BenchmarkEarlyCurveFit(b *testing.B) {
	pts := make([]earlycurve.MetricPoint, 200)
	for k := 1; k <= 200; k++ {
		v := 1/(0.05*float64(k)+1.2) + 0.8
		if k >= 100 {
			v = 1/(2.0*float64(k-99)+5.0) + 0.2
		}
		pts[k-1] = earlycurve.MetricPoint{Step: k, Value: v}
	}
	p := &earlycurve.Predictor{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictFinal(pts, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventQueue measures the virtual clock under heavy scheduling.
func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clk := simclock.NewVirtual(campaign.DefaultStart())
		for j := 0; j < 1000; j++ {
			clk.ScheduleAfter(time.Duration(j%97)*time.Second, func(time.Time) {})
		}
		clk.Sleep(time.Minute * 2)
	}
}

// BenchmarkGBTRound measures one boosting round on the GBTR workload data.
func BenchmarkGBTRound(b *testing.B) {
	data := mltrain.SyntheticRegression(400, 8, 0.1, 5)
	train, _ := data.Split(0.8)
	idx := make([]int, 128)
	for i := range idx {
		idx[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mltrain.NewGBTRegressor(5, 4)
		m.TrainStep(train, idx, 0.3)
	}
}

// BenchmarkRevPredInference measures one provisioning-time probability
// query (feature assembly + LSTM forward).
func BenchmarkRevPredInference(b *testing.B) {
	it, _ := market.DefaultCatalog().Lookup("m4.2xlarge")
	specs, _ := market.DefaultSpecs(market.DefaultCatalog())
	var spec market.MarketSpec
	for _, s := range specs {
		if s.Type.Name == it.Name {
			spec = s
		}
	}
	start := campaign.DefaultStart()
	tr, err := market.Generate(spec, start, start.Add(48*time.Hour), 3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := market.NewGrid(it, tr, start, start.Add(48*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	m, err := revpred.Train(g, revpred.HistorySteps, 24*60,
		revpred.Config{Hidden: 8, Depth: 2, Epochs: 1, Stride: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := revpred.HistorySteps + i%(g.Len()-2*revpred.HistorySteps)
		m.Predict(g, idx, g.Prices[idx]+0.05)
	}
}

// campaignBenchEnv builds the shared fixture for the campaign benchmarks:
// a 16-trial LoR workload over a 4-day constant-predictor environment.
func campaignBenchEnv(b *testing.B) (*campaign.Environment, *Benchmark, Curves) {
	b.Helper()
	env, err := campaign.NewEnvironment(campaign.EnvOptions{
		Seed: 1, Days: 6, TrainDays: 2, Predictor: campaign.PredictorConstant,
	})
	if err != nil {
		b.Fatal(err)
	}
	bench, err := BenchmarkByName("LoR", WorkloadConfig{Seed: 1, Scale: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	return env, bench, bench.SyntheticCurves(1)
}

// benchConstPerf is a noise-free per-type seconds-per-step model for the
// controlled campaign fixture.
type benchConstPerf map[string]float64

func (p benchConstPerf) StepSeconds(it market.InstanceType, _ string, _ int) float64 {
	return p[it.Name]
}

// multiDayFixture is the static (read-only, reusable) part of the
// controlled multi-day campaign: catalog, flat two-market traces, grids.
type multiDayFixture struct {
	cat    *market.Catalog
	traces market.TraceSet
	grids  map[string]*market.Grid
	preds  map[string]revpred.Predictor
	start  time.Time
}

var mdFixture *multiDayFixture

func newMultiDayFixture(b testing.TB) *multiDayFixture {
	b.Helper()
	if mdFixture != nil {
		return mdFixture
	}
	start := campaign.DefaultStart()
	cat := market.MustNewCatalog([]market.InstanceType{
		{Name: "slow", CPUs: 2, MemoryGB: 8, OnDemandPrice: 0.1},
		{Name: "fast", CPUs: 16, MemoryGB: 64, OnDemandPrice: 0.8},
	})
	gridStart := start.Add(-2 * time.Hour)
	end := start.Add(14 * 24 * time.Hour)
	f := &multiDayFixture{
		cat: cat,
		traces: market.TraceSet{
			"slow": {Type: "slow", Records: []market.Record{{At: gridStart, Price: 0.02}}},
			"fast": {Type: "fast", Records: []market.Record{{At: gridStart, Price: 0.2}}},
		},
		grids: map[string]*market.Grid{},
		preds: map[string]revpred.Predictor{},
		start: start,
	}
	for _, name := range []string{"slow", "fast"} {
		it, _ := cat.Lookup(name)
		g, err := market.NewGrid(it, f.traces[name], gridStart, end)
		if err != nil {
			b.Fatal(err)
		}
		f.grids[name] = g
		f.preds[name] = revpred.ConstantPredictor(0)
	}
	mdFixture = f
	return f
}

// run executes one controlled multi-day campaign (8 slow trials on the flat
// two-market world — the paper's regime where Algorithm 1's polling loop
// spins tens of thousands of no-op turns) under the given mode.
func (f *multiDayFixture) run(b testing.TB, mode core.LoopMode) *core.Report {
	b.Helper()
	clk := simclock.NewVirtual(f.start)
	cluster, err := cloudsim.NewCluster(clk, f.cat, f.traces)
	if err != nil {
		b.Fatal(err)
	}
	perf := benchConstPerf{"slow": 32.0, "fast": 8.0}
	var trials []*trial.Replay
	const maxSteps, every = 12000, 100
	for i := 0; i < 8; i++ {
		var pts []earlycurve.MetricPoint
		for s := every; s <= maxSteps; s += every {
			pts = append(pts, earlycurve.MetricPoint{
				Step:  s,
				Value: 1/(0.05*float64(s)+1.2) + 0.1*float64(i+1),
			})
		}
		tr, err := trial.NewReplay(fmt.Sprintf("hp-%d", i), maxSteps, pts, perf, 10)
		if err != nil {
			b.Fatal(err)
		}
		trials = append(trials, tr)
	}
	prov, err := core.NewProvisioner(cluster, []string{"slow", "fast"}, f.grids, f.preds, 0, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	orch, err := core.NewOrchestrator(cluster, cloudsim.NewObjectStore(), prov, trials, core.Config{
		Mode: mode, Theta: 0.7, MCnt: 2, StartupDelay: 30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := orch.Run()
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkCampaign measures one controlled multi-day SpotTune campaign
// under both scheduler loops. The event-driven loop's whole point is the
// loop_iters collapse — from one turn per PollInterval of virtual time to
// one per real scheduling event — and the wall-clock speedup that follows
// once the campaign is long enough for the polling loop to dominate.
func BenchmarkCampaign(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode core.LoopMode
	}{{"event", core.LoopEvent}, {"polling", core.LoopPolling}} {
		b.Run(mode.name, func(b *testing.B) {
			f := newMultiDayFixture(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := f.run(b, mode.mode)
				b.ReportMetric(rep.JCT.Hours(), "virtual_jct_hours")
				b.ReportMetric(float64(rep.LoopIterations), "loop_iters")
			}
		})
	}
}

// BenchmarkCampaignEnv measures one full synthetic-environment campaign (16
// trials, generated spot markets, constant predictor) under both loops —
// the realistic short-campaign regime, where shared work (EarlyCurve fits,
// Eq. 1-2 provisioning) bounds the achievable speedup.
func BenchmarkCampaignEnv(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode core.LoopMode
	}{{"event", core.LoopEvent}, {"polling", core.LoopPolling}} {
		b.Run(mode.name, func(b *testing.B) {
			env, bench, curves := campaignBenchEnv(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := env.RunSpotTune(bench, curves, campaign.Options{
					Theta: 0.7, Seed: uint64(i), Mode: mode.mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.JCT.Hours(), "virtual_jct_hours")
				b.ReportMetric(float64(rep.LoopIterations), "loop_iters")
			}
		})
	}
}

// BenchmarkCampaignUntraced / BenchmarkCampaignTraced are the flight
// recorder's overhead lane: the same synthetic-environment campaign with the
// no-op tracer (the default) and with a live recording. `make bench` feeds
// both through benchperf's ratio gate — traced/untraced must stay ≤ 1.05.
func BenchmarkCampaignUntraced(b *testing.B) {
	benchCampaignTrace(b, false)
}

func BenchmarkCampaignTraced(b *testing.B) {
	benchCampaignTrace(b, true)
}

func benchCampaignTrace(b *testing.B, traced bool) {
	env, bench, curves := campaignBenchEnv(b)
	var events int
	opt := campaign.Options{
		Theta: 0.7,
		Trace: traced,
		Inspect: func(d *campaign.RunDetail) error {
			if d.Trace != nil {
				events = d.Trace.Len()
			}
			return nil
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i)
		if _, err := env.RunSpotTune(bench, curves, opt); err != nil {
			b.Fatal(err)
		}
	}
	if traced {
		b.ReportMetric(float64(events), "trace_events")
	}
}

// BenchmarkTraceExport measures turning a finished recording into its JSONL
// and Chrome trace_event forms — the cost a user pays only at write-out.
func BenchmarkTraceExport(b *testing.B) {
	env, bench, curves := campaignBenchEnv(b)
	var rec *obs.Recording
	_, err := env.RunSpotTune(bench, curves, campaign.Options{
		Theta: 0.7, Trace: true,
		Inspect: func(d *campaign.RunDetail) error { rec = d.Trace; return nil },
	})
	if err != nil || rec == nil {
		b.Fatalf("no recording (err=%v)", err)
	}
	for _, format := range []string{"jsonl", "chrome"} {
		b.Run(format, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := obs.WriteTrace(&buf, format, rec); err != nil {
					b.Fatal(err)
				}
				n = buf.Len()
			}
			b.ReportMetric(float64(rec.Len()), "events")
			b.ReportMetric(float64(n)/float64(rec.Len()), "bytes_per_event")
		})
	}
}

// BenchmarkCampaignSweep measures a 16-campaign θ/seed sweep through the
// campaign.Sweep worker pool — the many-campaign scenario the event-driven
// core exists for.
func BenchmarkCampaignSweep(b *testing.B) {
	env, bench, curves := campaignBenchEnv(b)
	thetas := []float64{0.25, 0.5, 0.75, 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tasks []campaign.Task
		for s := 0; s < 4; s++ {
			for _, theta := range thetas {
				theta, seed := theta, uint64(i*4+s)
				tasks = append(tasks, campaign.Task{
					Key: fmt.Sprintf("θ=%.2f/seed=%d", theta, seed),
					Run: func(*rand.Rand) (*core.Report, error) {
						return env.RunSpotTune(bench, curves, campaign.Options{Theta: theta, Seed: seed})
					},
				})
			}
		}
		res := campaign.Sweep(tasks, campaign.SweepOptions{Seed: uint64(i)})
		if err := campaign.FirstErr(res); err != nil {
			b.Fatal(err)
		}
		iters := 0
		for _, r := range res {
			iters += r.Report.LoopIterations
		}
		b.ReportMetric(float64(len(res)), "campaigns")
		b.ReportMetric(float64(iters)/float64(len(res)), "mean_loop_iters")
	}
}

// BenchmarkAblationPredictors compares Eq. 2 with no prediction, the
// session predictor, and the oracle.
func BenchmarkAblationPredictors(b *testing.B) {
	ctx := experiments.NewContext(experiments.Options{
		Seed: 1, Scale: 0.15, Quick: true, Workloads: []string{"LoR"},
	})
	if _, err := experiments.PredictorAblation(ctx); err != nil { // warm the lazy fixtures
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PredictorAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Predictor == "oracle" {
				b.ReportMetric(r.FreeFrac, "oracle_free_frac")
			}
			if r.Predictor == "none" {
				b.ReportMetric(r.FreeFrac, "none_free_frac")
			}
		}
	}
}

// BenchmarkMatrixStreaming drives the streaming matrix runner over grids of
// increasing size (the replicate axis scales the cell count without adding
// specs). Beyond cells/s it reports the peak heap observed while streaming —
// the bounded-memory contract is that this metric stays flat between the
// 1k-cell and 100k-cell grids.
func BenchmarkMatrixStreaming(b *testing.B) {
	for _, cells := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			benchMatrixStreaming(b, cells)
		})
	}
}

func benchMatrixStreaming(b *testing.B, cells int) {
	m := scenario.Matrix{Specs: []scenario.Spec{{
		Name:      "bench",
		Regime:    "calm",
		Days:      2,
		TrainDays: 1,
		Pool:      []string{"r4.large", "m4.2xlarge"},
	}}}
	opt := scenario.Options{
		Seed:     1,
		Quick:    true,
		Workload: "LoR",
		Scale:    0.2,
		Policies: []string{"spottune", "cheapest-spot"},
	}
	reps := cells / len(opt.Policies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var (
			peak uint64
			ms   runtime.MemStats
			seen int
		)
		sum, err := m.Stream(scenario.StreamOptions{
			Options:    opt,
			Replicates: reps,
			OnCell: func(scenario.Cell) error {
				seen++
				if seen%1024 == 0 {
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak {
						peak = ms.HeapAlloc
					}
				}
				return nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if seen == 0 || peak == 0 {
			runtime.ReadMemStats(&ms)
			peak = ms.HeapAlloc
		}
		if want := reps * len(opt.Policies); sum.Cells != want {
			b.Fatalf("streamed %d cells, want %d", sum.Cells, want)
		}
		if sum.Violations != 0 {
			b.Fatalf("%d invariant violations in the streamed grid", sum.Violations)
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
		b.ReportMetric(sum.Cost.Quantile(0.99), "cost-p99-usd")
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// serviceBenchPeak1k stashes the 1k-tenant sub-benchmark's peak heap (MB) so
// the 10k run can enforce the bounded-memory contract in-process: service
// working state is per shard and per in-flight slot, so a 10× tenant count
// must not cost more than 2× the heap.
var serviceBenchPeak1k float64

// BenchmarkServiceThroughput drives the sharded multi-tenant engine at 1k
// and 10k concurrent campaigns on a contended shared market and reports
// campaigns/s plus the peak heap observed while streaming results. `make
// service` exports these numbers to BENCH_service.json.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, tenants := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			benchServiceThroughput(b, tenants)
		})
	}
}

func benchServiceThroughput(b *testing.B, tenants int) {
	env, err := campaign.NewEnvironment(campaign.EnvOptions{
		Seed: 1, Days: 2, TrainDays: 1, Predictor: campaign.PredictorConstant,
	})
	if err != nil {
		b.Fatal(err)
	}
	bench, err := BenchmarkByName("LoR", WorkloadConfig{Seed: 1, Scale: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	curves := bench.SyntheticCurves(1)
	battery := service.DefaultBattery(tenants, 1)
	cfg := service.Config{
		Shards:         8,
		MaxInFlight:    8,
		Contention:     true,
		Capacity:       4,
		SurgeSlope:     0.5,
		SkipInvariants: true, // the battery lane audits; this lane measures
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var (
			peak uint64
			ms   runtime.MemStats
			seen int
		)
		cfg.OnResult = func(r service.Result) {
			if r.Err != nil {
				b.Fatalf("tenant %s: %v", r.Tenant.ID, r.Err)
			}
			seen++
			if seen%256 == 0 {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
		sum, err := service.Run(env, bench, curves, battery, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if peak == 0 {
			runtime.ReadMemStats(&ms)
			peak = ms.HeapAlloc
		}
		if sum.Admitted != tenants || sum.Failed != 0 {
			b.Fatalf("summary %+v, want %d admitted", sum, tenants)
		}
		if len(sum.Capacity) != 0 {
			b.Fatalf("capacity oversubscription: %v", sum.Capacity)
		}
		peakMB := float64(peak) / (1 << 20)
		b.ReportMetric(peakMB, "peak-heap-MB")
		b.ReportMetric(sum.Cost.Quantile(0.99), "cost-p99-usd")
		switch tenants {
		case 1000:
			serviceBenchPeak1k = peakMB
		case 10000:
			// The flat-memory gate. Guarded so a filtered run of only the
			// 10k sub-benchmark still works.
			if serviceBenchPeak1k > 0 && peakMB > 2*serviceBenchPeak1k {
				b.Fatalf("peak heap %.1f MB at 10k tenants exceeds 2x the 1k figure (%.1f MB)",
					peakMB, serviceBenchPeak1k)
			}
		}
	}
	b.ReportMetric(float64(tenants)*float64(b.N)/b.Elapsed().Seconds(), "campaigns/s")
}
