// Command tracegen generates and inspects synthetic spot-price traces — the
// stand-in for the Kaggle "AWS Spot Pricing Market" dataset the paper uses.
//
// Usage:
//
//	tracegen -type r3.xlarge -days 11 -seed 1 -out r3.csv
//	tracegen -summary            # per-market statistics for the whole pool
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"spottune/internal/campaign"
	"spottune/internal/market"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		typeName = flag.String("type", "r3.xlarge", "instance type (Table III)")
		days     = flag.Int("days", 11, "trace length in days")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "", "CSV output path (default stdout summary only)")
		summary  = flag.Bool("summary", false, "print statistics for all six markets")
	)
	flag.Parse()

	cat := market.DefaultCatalog()
	specs, err := market.DefaultSpecs(cat)
	if err != nil {
		return err
	}
	start := campaign.DefaultStart()
	end := start.Add(time.Duration(*days) * 24 * time.Hour)

	if *summary {
		fmt.Printf("%-12s %8s %8s %8s %8s %9s\n", "market", "od $/h", "avg $/h", "max $/h", "records", "disc.%")
		for _, spec := range specs {
			tr, err := market.Generate(spec, start, end, *seed)
			if err != nil {
				return err
			}
			avg, err := tr.AvgOver(start, end)
			if err != nil {
				return err
			}
			maxP := tr.MaxOver(start, end)
			fmt.Printf("%-12s %8.3f %8.3f %8.3f %8d %8.1f%%\n",
				spec.Type.Name, spec.Type.OnDemandPrice, avg, maxP,
				len(tr.Records), 100*(1-avg/spec.Type.OnDemandPrice))
		}
		return nil
	}

	var spec market.MarketSpec
	found := false
	for _, s := range specs {
		if s.Type.Name == *typeName {
			spec, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("unknown instance type %q (see Table III)", *typeName)
	}
	tr, err := market.Generate(spec, start, end, *seed)
	if err != nil {
		return err
	}
	avg, err := tr.AvgOver(start, end)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d records over %d days, avg $%.4f/h (on-demand $%.3f, discount %.1f%%), max $%.4f\n",
		*typeName, len(tr.Records), *days, avg, spec.Type.OnDemandPrice,
		100*(1-avg/spec.Type.OnDemandPrice), tr.MaxOver(start, end))
	if *out == "" {
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"time", "price_usd_per_hour"}); err != nil {
		return err
	}
	for _, r := range tr.Records {
		if err := w.Write([]string{r.At.Format(time.RFC3339), fmt.Sprintf("%.4f", r.Price)}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
