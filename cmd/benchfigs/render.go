package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spottune/internal/experiments"
	"spottune/internal/obs"
	"spottune/internal/scenario"
)

// writer persists CSV files into the output directory.
type writer struct {
	dir string
}

func (w *writer) csv(name string, header []string, rows [][]string) error {
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// bar renders a proportional ASCII bar.
func bar(value, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }

func runFig1(opts experiments.Options, w *writer) error {
	res, err := experiments.Fig1(opts)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(res.Records))
	maxP := 0.0
	for _, r := range res.Records {
		rows = append(rows, []string{r.At.Format("2006-01-02T15:04"), f(r.Price), f(res.OnDemand)})
		if r.Price > maxP {
			maxP = r.Price
		}
	}
	if err := w.csv("fig1_spot_prices.csv", []string{"time", "spot_price", "on_demand_price"}, rows); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 1: %s spot prices over 11 days ==\n", res.TypeName)
	fmt.Printf("records=%d  on-demand=$%.3f/h  max spot=$%.3f/h (%.1fx on-demand)\n",
		len(res.Records), res.OnDemand, maxP, maxP/res.OnDemand)
	// Daily max sparkline.
	day := res.Records[0].At
	dmax := 0.0
	for _, r := range res.Records {
		if r.At.Sub(day) >= 24*60*60*1e9 {
			fmt.Printf("  %s  max $%.3f %s\n", day.Format("Jan 02"), dmax, bar(dmax, maxP, 40))
			day = day.Add(24 * 60 * 60 * 1e9)
			dmax = 0
		}
		if r.Price > dmax {
			dmax = r.Price
		}
	}
	return nil
}

func runFig5(ctx *experiments.Context, w *writer) error {
	res, err := experiments.Fig5(ctx)
	if err != nil {
		return err
	}
	var rows [][]string
	ids := make([]string, 0, len(res.LoR))
	for id := range res.LoR {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, p := range res.LoR[id] {
			rows = append(rows, []string{"LoR", id, fmt.Sprint(p.Step), f(p.Value)})
		}
	}
	for _, p := range res.ResNet {
		rows = append(rows, []string{"ResNet", res.ResHP, fmt.Sprint(p.Step), f(p.Value)})
	}
	if err := w.csv("fig5_loss_curves.csv", []string{"workload", "hp", "step", "val_loss"}, rows); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 5: validation-loss curve examples ==\n")
	for _, id := range ids {
		c := res.LoR[id]
		fmt.Printf("  LoR %-45s %.4f -> %.4f over %d points\n", id, c[0].Value, c[len(c)-1].Value, len(c))
	}
	c := res.ResNet
	fmt.Printf("  ResNet %-42s %.4f -> %.4f (two-stage lr decay)\n", res.ResHP, c[0].Value, c[len(c)-1].Value)
	return nil
}

func runFig6(ctx *experiments.Context, w *writer) error {
	rows, err := experiments.Fig6(ctx)
	if err != nil {
		return err
	}
	var out [][]string
	maxS := 0.0
	for _, r := range rows {
		out = append(out, []string{r.TypeName, f(r.Price), f(r.SecPerStep), f(r.COV)})
		if r.SecPerStep > maxS {
			maxS = r.SecPerStep
		}
	}
	if err := w.csv("fig6_perf_profile.csv", []string{"instance", "od_price", "sec_per_step", "cov"}, out); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 6: ResNet per-step time by instance (price ascending) ==\n")
	for _, r := range rows {
		fmt.Printf("  %-11s $%.3f/h  %6.2f s/step (COV %.3f) %s\n",
			r.TypeName, r.Price, r.SecPerStep, r.COV, bar(r.SecPerStep, maxS, 30))
	}
	fmt.Println("  shape target: speed is NOT monotone in price; COV < 0.1 everywhere")
	return nil
}

func runFig7(rows []experiments.Fig7Row, w *writer) error {
	pcr := experiments.PCRNormalized(rows)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, r.Approach, f(r.Cost), f(r.JCTHours), f(pcr[r.Workload][r.Approach]),
			f(r.Report.FreeStepFraction()), f(r.Report.RefundFraction()),
		})
	}
	if err := w.csv("fig7_cost_jct_pcr.csv",
		[]string{"workload", "approach", "cost_usd", "jct_hours", "pcr_norm", "free_step_frac", "refund_frac"},
		out); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 7: cost / JCT / PCR, four approaches ==\n")
	byWl := map[string][]experiments.Fig7Row{}
	var wls []string
	for _, r := range rows {
		if len(byWl[r.Workload]) == 0 {
			wls = append(wls, r.Workload)
		}
		byWl[r.Workload] = append(byWl[r.Workload], r)
	}
	for _, wl := range wls {
		fmt.Printf("  %s:\n", wl)
		maxC, maxJ := 0.0, 0.0
		for _, r := range byWl[wl] {
			if r.Cost > maxC {
				maxC = r.Cost
			}
			if r.JCTHours > maxJ {
				maxJ = r.JCTHours
			}
		}
		for _, r := range byWl[wl] {
			fmt.Printf("    %-22s cost $%7.3f %-20s JCT %6.2fh %-20s PCR %.2f\n",
				r.Approach, r.Cost, bar(r.Cost, maxC, 20), r.JCTHours, bar(r.JCTHours, maxJ, 20),
				pcr[wl][r.Approach])
		}
	}
	// §IV-B headline aggregate ratios.
	agg := map[string]struct{ cost, jct, pcr float64 }{}
	for _, r := range rows {
		a := agg[r.Approach]
		a.cost += r.Cost
		a.jct += r.JCTHours
		a.pcr += pcr[r.Workload][r.Approach]
		agg[r.Approach] = a
	}
	st10, cheap, fast := agg[experiments.ApproachSpotTune10], agg[experiments.ApproachCheapest], agg[experiments.ApproachFastest]
	st07 := agg[experiments.ApproachSpotTune07]
	n := float64(len(byWl))
	fmt.Printf("  headline (paper: θ=1.0 saves 41.5%%/86.04%%; θ=0.7 saves 75.64%%/94.18%%):\n")
	fmt.Printf("    SpotTune(θ=1.0) vs cheapest: saves %5.1f%%   vs fastest: saves %5.1f%%\n",
		100*(1-st10.cost/cheap.cost), 100*(1-st10.cost/fast.cost))
	fmt.Printf("    SpotTune(θ=0.7) vs cheapest: saves %5.1f%%   vs fastest: saves %5.1f%%\n",
		100*(1-st07.cost/cheap.cost), 100*(1-st07.cost/fast.cost))
	fmt.Printf("    mean normalized PCR: st07=%.2f st10=%.2f cheapest=%.2f fastest=%.2f\n",
		st07.pcr/n, st10.pcr/n, cheap.pcr/n, fast.pcr/n)
	fmt.Printf("    mean JCT hours:      st07=%.2f st10=%.2f cheapest=%.2f fastest=%.2f\n",
		st07.jct/n, st10.jct/n, cheap.jct/n, fast.jct/n)
	return nil
}

func runFig8(ctx *experiments.Context, w *writer) error {
	rows, acc, err := experiments.Fig8(ctx)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{f(r.Theta), r.Workload, f(r.Cost), f(r.JCTHours),
			fmt.Sprint(r.Top1), fmt.Sprint(r.Top3)})
	}
	if err := w.csv("fig8_theta_sweep.csv",
		[]string{"theta", "workload", "cost_usd", "jct_hours", "top1", "top3"}, out); err != nil {
		return err
	}
	var accOut [][]string
	for _, a := range acc {
		accOut = append(accOut, []string{f(a.Theta), f(a.Top1), f(a.Top3)})
	}
	if err := w.csv("fig8_accuracy.csv", []string{"theta", "top1_acc", "top3_acc"}, accOut); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 8: θ sensitivity ==\n")
	for _, a := range acc {
		fmt.Printf("  θ=%.1f  top1=%.2f %-10s top3=%.2f %s\n",
			a.Theta, a.Top1, bar(a.Top1, 1, 10), a.Top3, bar(a.Top3, 1, 10))
	}
	fmt.Println("  shape target: cost and JCT grow ~linearly with θ; top-3 accuracy 100% for θ >= 0.7")
	return nil
}

func runFig9(rows []experiments.Fig7Row, w *writer) error {
	f9 := experiments.Fig9(rows)
	var out [][]string
	for _, r := range f9 {
		out = append(out, []string{r.Workload, fmt.Sprint(r.FreeSteps), fmt.Sprint(r.ChargedSteps),
			f(r.FreeFraction), f(r.GrossCost), f(r.Refund), f(r.RefundFrac)})
	}
	if err := w.csv("fig9_refund_contribution.csv",
		[]string{"workload", "free_steps", "charged_steps", "free_frac", "gross_cost", "refund", "refund_frac"},
		out); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 9: refunded (free) resource contribution at θ=0.7 ==\n")
	sum := 0.0
	for _, r := range f9 {
		fmt.Printf("  %-8s free steps %5.1f%% %-20s refund %5.1f%% of gross\n",
			r.Workload, 100*r.FreeFraction, bar(r.FreeFraction, 1, 20), 100*r.RefundFrac)
		sum += r.FreeFraction
	}
	fmt.Printf("  mean free-step contribution %.1f%% (paper: 77.5%%)\n", 100*sum/float64(len(f9)))
	return nil
}

func runFig10(ctx *experiments.Context, w *writer) error {
	res, err := experiments.Fig10(ctx)
	if err != nil {
		return err
	}
	var out [][]string
	for _, m := range res.PerMarket {
		out = append(out, []string{m.Market,
			f(m.RevPred.Accuracy()), f(m.RevPred.F1()),
			f(m.Tributary.Accuracy()), f(m.Tributary.F1()),
			f(m.LogReg.Accuracy()), f(m.LogReg.F1())})
	}
	if err := w.csv("fig10_predictor_scores.csv",
		[]string{"market", "revpred_acc", "revpred_f1", "tributary_acc", "tributary_f1", "logreg_acc", "logreg_f1"},
		out); err != nil {
		return err
	}
	var cOut [][]string
	for _, r := range res.CostRows {
		cOut = append(cOut, []string{r.Workload, f(r.CostRevPred), f(r.CostTributary),
			f(r.PCRRevPred), f(r.PCRTributary)})
	}
	if err := w.csv("fig10c_predictor_campaigns.csv",
		[]string{"workload", "cost_revpred", "cost_tributary", "pcr_revpred", "pcr_tributary"}, cOut); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 10: revocation predictor comparison ==\n")
	fmt.Printf("  aggregate  accuracy            F1\n")
	fmt.Printf("  RevPred    %.3f %-12s %.3f %s\n", res.RevPred.Accuracy(),
		bar(res.RevPred.Accuracy(), 1, 12), res.RevPred.F1(), bar(res.RevPred.F1(), 1, 12))
	fmt.Printf("  Tributary  %.3f %-12s %.3f %s\n", res.Tributary.Accuracy(),
		bar(res.Tributary.Accuracy(), 1, 12), res.Tributary.F1(), bar(res.Tributary.F1(), 1, 12))
	fmt.Printf("  LogReg     %.3f %-12s %.3f %s\n", res.LogReg.Accuracy(),
		bar(res.LogReg.Accuracy(), 1, 12), res.LogReg.F1(), bar(res.LogReg.F1(), 1, 12))
	fmt.Println("  shape target: RevPred >= Tributary >= LogReg (paper: +20.32% acc, +34.03% F1 over Tributary)")
	if len(res.CostRows) > 0 {
		var dc, dp float64
		for _, r := range res.CostRows {
			if r.CostTributary > 0 {
				dc += 1 - r.CostRevPred/r.CostTributary
			}
			dp += 1 - r.PCRTributary
		}
		n := float64(len(res.CostRows))
		fmt.Printf("  10c: RevPred-driven campaigns cost %.1f%% less, PCR %.1f%% higher (paper: ~25%% / ~24%%)\n",
			100*dc/n, 100*dp/n)
	}
	return nil
}

func runFig11(ctx *experiments.Context, w *writer) error {
	res, err := experiments.Fig11(ctx)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range res.Rows {
		out = append(out, []string{r.Config, f(r.Truth), f(r.EarlyPred), f(r.SLAQPred),
			f(r.EarlyErr), f(r.SLAQErr)})
	}
	if err := w.csv("fig11_trend_errors.csv",
		[]string{"config", "truth", "earlycurve_pred", "slaq_pred", "earlycurve_err", "slaq_err"}, out); err != nil {
		return err
	}
	var ex [][]string
	for _, p := range res.ExampleTruthCurve {
		ex = append(ex, []string{fmt.Sprint(p.Step), f(p.Value)})
	}
	if err := w.csv("fig11a_example_curve.csv", []string{"step", "val_loss"}, ex); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 11: EarlyCurve vs SLAQ on 16 ResNet configs ==\n")
	var ecSum, slaqSum float64
	maxErr := 0.0
	for _, r := range res.Rows {
		if r.SLAQErr > maxErr {
			maxErr = r.SLAQErr
		}
	}
	for i, r := range res.Rows {
		ecSum += r.EarlyErr
		slaqSum += r.SLAQErr
		fmt.Printf("  cfg%02d  EC %.4f %-15s SLAQ %.4f %s\n",
			i, r.EarlyErr, bar(r.EarlyErr, maxErr, 15), r.SLAQErr, bar(r.SLAQErr, maxErr, 15))
	}
	n := float64(len(res.Rows))
	fmt.Printf("  mean error: EarlyCurve %.4f vs SLAQ %.4f\n", ecSum/n, slaqSum/n)
	fmt.Printf("  example config (largest gap): %s\n", res.Example.Config)
	return nil
}

func runFig12(rows []experiments.Fig7Row, w *writer) error {
	f12 := experiments.Fig12(rows)
	var out [][]string
	for _, r := range f12 {
		out = append(out, []string{r.Workload, f(r.Overhead.Seconds()), f(r.JCT.Seconds()), f(r.OverheadFrac)})
	}
	if err := w.csv("fig12_checkpoint_overhead.csv",
		[]string{"workload", "overhead_sec", "jct_sec", "overhead_frac"}, out); err != nil {
		return err
	}
	fmt.Printf("\n== Fig 12: checkpoint-restore overhead at θ=0.7 ==\n")
	sum := 0.0
	for _, r := range f12 {
		fmt.Printf("  %-8s %5.2f%% of JCT %s\n", r.Workload, 100*r.OverheadFrac, bar(r.OverheadFrac, 0.2, 30))
		sum += r.OverheadFrac
	}
	fmt.Printf("  mean %.2f%% (paper: <10%% on average)\n", 100*sum/float64(len(f12)))
	fmt.Printf("  §IV-F throughput calibration:\n")
	for _, r := range experiments.CheckpointSpeeds() {
		fmt.Printf("    %2d cores: %.2f MB/s, max model %.2f GB\n", r.CPUs, r.SpeedMBps, r.MaxModelSizeGB)
	}
	return nil
}

func runAblation(ctx *experiments.Context, w *writer) error {
	rows, err := experiments.PredictorAblation(ctx)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Predictor, r.Workload, f(r.Cost), f(r.JCTHours), f(r.FreeFrac), f(r.Refund)})
	}
	if err := w.csv("ablation_predictors.csv",
		[]string{"predictor", "workload", "cost_usd", "jct_hours", "free_frac", "refund_usd"}, out); err != nil {
		return err
	}
	fmt.Printf("\n== Ablation: Eq. 2 with p=0, trained predictor, and oracle ==\n")
	for _, r := range rows {
		fmt.Printf("  %-9s %-8s cost $%7.3f  JCT %6.2fh  free %5.1f%%  refund $%.3f\n",
			r.Predictor, r.Workload, r.Cost, r.JCTHours, 100*r.FreeFrac, r.Refund)
	}
	return nil
}

// runPolicyStudy executes the cross-policy comparison (every registered
// provisioning policy on one Table II workload through campaign.Sweep),
// writes policy.csv, prints the ASCII comparison, and — when jsonPath is
// non-empty — emits the rows as JSON (the CI benchmark-smoke artifact).
// When tracePath is non-empty the study runs with the flight recorder on
// and writes one recording per policy row to that path; tracing is purely
// observational, so the rows (and the JSON artifact) are byte-identical to
// an untraced study.
func runPolicyStudy(ctx *experiments.Context, w *writer, jsonPath, tracePath, traceFormat string) error {
	var rows []experiments.CrossPolicyRow
	var err error
	if tracePath != "" {
		var recs []*obs.Recording
		rows, recs, err = experiments.CrossPolicyTraced(ctx)
		if err != nil {
			return err
		}
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		if err := obs.WriteTrace(tf, traceFormat, recs...); err != nil {
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("cross-policy trace written to %s (format %s)\n", tracePath, traceFormat)
	} else {
		rows, err = experiments.CrossPolicy(ctx)
		if err != nil {
			return err
		}
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Policy, r.Workload, f(r.Cost), f(r.JCTHours), f(r.RefundFrac),
			fmt.Sprintf("%d", r.Deployments), fmt.Sprintf("%d", r.OnDemandDeployments),
			fmt.Sprintf("%d", r.Notices),
		})
	}
	if err := w.csv("policy.csv",
		[]string{"policy", "workload", "cost_usd", "jct_hours", "refund_frac",
			"deployments", "on_demand_deployments", "notices"}, out); err != nil {
		return err
	}
	maxCost := 0.0
	for _, r := range rows {
		if r.Cost > maxCost {
			maxCost = r.Cost
		}
	}
	fmt.Printf("\n== Cross-policy study: %d provisioning policies on %s ==\n", len(rows), rows[0].Workload)
	for _, r := range rows {
		fmt.Printf("  %-17s cost $%7.3f %-24s JCT %6.2fh  refund %5.1f%%  od %d/%d\n",
			r.Policy, r.Cost, bar(r.Cost, maxCost, 24), r.JCTHours,
			100*r.RefundFrac, r.OnDemandDeployments, r.Deployments)
	}
	if jsonPath == "" {
		return nil
	}
	type jsonRow struct {
		Policy              string  `json:"policy"`
		Workload            string  `json:"workload"`
		CostUSD             float64 `json:"cost_usd"`
		JCTHours            float64 `json:"jct_hours"`
		RefundFrac          float64 `json:"refund_frac"`
		Deployments         int     `json:"deployments"`
		OnDemandDeployments int     `json:"on_demand_deployments"`
		Notices             int     `json:"notices"`
	}
	jrows := make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		jrows = append(jrows, jsonRow{
			Policy:              r.Policy,
			Workload:            r.Workload,
			CostUSD:             r.Cost,
			JCTHours:            r.JCTHours,
			RefundFrac:          r.RefundFrac,
			Deployments:         r.Deployments,
			OnDemandDeployments: r.OnDemandDeployments,
			Notices:             r.Notices,
		})
	}
	blob, err := json.MarshalIndent(jrows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(blob, '\n'), 0o644)
}

// runTunerStudy executes the cross-tuner comparison (every registered
// search strategy on one Table II workload under the spottune provisioning
// policy through campaign.Sweep), writes tuner.csv, prints the ASCII
// comparison, and — when jsonPath is non-empty — emits the rows as JSON
// (the CI benchmark-smoke artifact BENCH_tuner.json).
func runTunerStudy(ctx *experiments.Context, w *writer, jsonPath string) error {
	rows, err := experiments.CrossTuner(ctx)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Tuner, r.Policy, r.Workload, f(r.Cost), f(r.JCTHours), f(r.RefundFrac),
			fmt.Sprintf("%d", r.Deployments), fmt.Sprintf("%d", r.Notices),
			fmt.Sprintf("%d", r.Revocations), r.Best,
		})
	}
	if err := w.csv("tuner.csv",
		[]string{"tuner", "policy", "workload", "cost_usd", "jct_hours", "refund_frac",
			"deployments", "notices", "revocations", "best"}, out); err != nil {
		return err
	}
	maxCost := 0.0
	for _, r := range rows {
		if r.Cost > maxCost {
			maxCost = r.Cost
		}
	}
	fmt.Printf("\n== Cross-tuner study: %d search strategies on %s ==\n", len(rows), rows[0].Workload)
	for _, r := range rows {
		fmt.Printf("  %-19s cost $%7.3f %-24s JCT %6.2fh  refund %5.1f%%  notices %3d  best %s\n",
			r.Tuner, r.Cost, bar(r.Cost, maxCost, 24), r.JCTHours,
			100*r.RefundFrac, r.Notices, r.Best)
	}
	if jsonPath == "" {
		return nil
	}
	type jsonRow struct {
		Tuner       string  `json:"tuner"`
		Policy      string  `json:"policy"`
		Workload    string  `json:"workload"`
		CostUSD     float64 `json:"cost_usd"`
		JCTHours    float64 `json:"jct_hours"`
		RefundFrac  float64 `json:"refund_frac"`
		Deployments int     `json:"deployments"`
		Notices     int     `json:"notices"`
		Revocations int     `json:"revocations"`
		Best        string  `json:"best"`
	}
	jrows := make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		jrows = append(jrows, jsonRow{
			Tuner:       r.Tuner,
			Policy:      r.Policy,
			Workload:    r.Workload,
			CostUSD:     r.Cost,
			JCTHours:    r.JCTHours,
			RefundFrac:  r.RefundFrac,
			Deployments: r.Deployments,
			Notices:     r.Notices,
			Revocations: r.Revocations,
			Best:        r.Best,
		})
	}
	blob, err := json.MarshalIndent(jrows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(blob, '\n'), 0o644)
}

// runScenarioMatrix executes the scenario x policy matrix (every registered
// policy across the named scenarios from the default battery), writes the
// per-cell scenarios.csv, and prints a cost leaderboard per scenario. Cells
// are invariant-audited; violations fail the command.
func runScenarioMatrix(opts experiments.Options, w *writer, names string) error {
	specs, err := scenario.ParseSpecList(names)
	if err != nil {
		return err
	}
	workloadName := "LoR"
	if len(opts.Workloads) > 0 {
		workloadName = opts.Workloads[0]
	}
	res, err := scenario.Matrix{Specs: specs}.Run(scenario.Options{
		Seed:     opts.Seed,
		Quick:    opts.Quick,
		Scale:    opts.Scale,
		Workload: workloadName,
	})
	if err != nil {
		return err
	}
	if err := res.WriteCSVFile(filepath.Join(w.dir, "scenarios.csv")); err != nil {
		return err
	}

	maxCost := 0.0
	for _, c := range res.Cells {
		if c.Cost > maxCost {
			maxCost = c.Cost
		}
	}
	last := ""
	for _, c := range res.Cells {
		if c.Scenario != last {
			fmt.Printf("\n== Scenario %s (regime %s) ==\n", c.Scenario, c.Regime)
			last = c.Scenario
		}
		fmt.Printf("  %-17s cost $%7.3f %-24s JCT %6.2fh  refund %5.1f%%\n",
			c.Policy, c.Cost, bar(c.Cost, maxCost, 24), c.JCTHours, 100*c.RefundFrac)
	}
	if err := res.ViolationError(os.Stderr); err != nil {
		return err
	}
	fmt.Println("\nscenario invariant audit: every cell sound")
	return nil
}
