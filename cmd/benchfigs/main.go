// Command benchfigs regenerates every table and figure of the SpotTune
// paper's evaluation (§IV) against the simulated substrates, writing CSVs to
// an output directory and printing ASCII summaries with the paper's
// shape-targets alongside.
//
// Usage:
//
//	benchfigs -fig all -out results
//	benchfigs -fig 7,9,12 -quick
//	benchfigs -fig 10 -seed 3
//	benchfigs -fig none -quick -policy                         # cross-policy study only
//	benchfigs -fig none -quick -policyjson BENCH_policy.json   # + JSON artifact
//	benchfigs -fig none -quick -tunerjson BENCH_tuner.json     # cross-tuner study + artifact
//	benchfigs -fig none -quick -scenarios all                  # scenario x policy matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"spottune/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfigs:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figFlag    = flag.String("fig", "all", "comma-separated figure numbers (1,5,6,7,8,9,10,11,12) or 'all'")
		outDir     = flag.String("out", "results", "output directory for CSV files")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		scale      = flag.Float64("scale", 1.0, "workload scale (dataset sizes and horizons)")
		quick      = flag.Bool("quick", false, "fast mode: synthetic curves, tiny predictors, short traces")
		ablation   = flag.Bool("ablation", false, "also run the predictor ablation (none vs trained vs oracle)")
		policyS    = flag.Bool("policy", false, "also run the cross-policy provisioning study")
		policyJS   = flag.String("policyjson", "", "write the cross-policy study rows as JSON to this path (implies -policy)")
		tunerS     = flag.Bool("tuner", false, "also run the cross-tuner search-strategy study")
		tunerJS    = flag.String("tunerjson", "", "write the cross-tuner study rows as JSON to this path (implies -tuner)")
		scenariosF = flag.String("scenarios", "none", "also run the scenario x policy matrix: comma-separated scenario names, 'all', or 'none'")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with `go tool pprof`)")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
		trace      = flag.String("trace", "", "flight-recorder output path for the cross-policy study (implies -policy; one recording per policy row)")
		traceFmt   = flag.String("trace-format", "jsonl", "trace format: jsonl or chrome")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchfigs: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchfigs: memprofile:", err)
			}
		}()
	}

	want, err := parseFigs(*figFlag)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Quick: *quick}
	ctx := experiments.NewContext(opts)
	w := &writer{dir: *outDir}

	if want[1] {
		if err := runFig1(opts, w); err != nil {
			return fmt.Errorf("fig 1: %w", err)
		}
	}
	if want[5] {
		if err := runFig5(ctx, w); err != nil {
			return fmt.Errorf("fig 5: %w", err)
		}
	}
	if want[6] {
		if err := runFig6(ctx, w); err != nil {
			return fmt.Errorf("fig 6: %w", err)
		}
	}
	var fig7rows []experiments.Fig7Row
	if want[7] || want[9] || want[12] {
		fig7rows, err = experiments.Fig7(ctx)
		if err != nil {
			return fmt.Errorf("fig 7: %w", err)
		}
	}
	if want[7] {
		if err := runFig7(fig7rows, w); err != nil {
			return fmt.Errorf("fig 7: %w", err)
		}
	}
	if want[8] {
		if err := runFig8(ctx, w); err != nil {
			return fmt.Errorf("fig 8: %w", err)
		}
	}
	if want[9] {
		if err := runFig9(fig7rows, w); err != nil {
			return fmt.Errorf("fig 9: %w", err)
		}
	}
	if want[10] {
		if err := runFig10(ctx, w); err != nil {
			return fmt.Errorf("fig 10: %w", err)
		}
	}
	if want[11] {
		if err := runFig11(ctx, w); err != nil {
			return fmt.Errorf("fig 11: %w", err)
		}
	}
	if want[12] {
		if err := runFig12(fig7rows, w); err != nil {
			return fmt.Errorf("fig 12: %w", err)
		}
	}
	if *ablation {
		if err := runAblation(ctx, w); err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
	}
	if *policyS || *policyJS != "" || *trace != "" {
		if err := runPolicyStudy(ctx, w, *policyJS, *trace, *traceFmt); err != nil {
			return fmt.Errorf("policy study: %w", err)
		}
	}
	if *tunerS || *tunerJS != "" {
		if err := runTunerStudy(ctx, w, *tunerJS); err != nil {
			return fmt.Errorf("tuner study: %w", err)
		}
	}
	if *scenariosF != "none" && *scenariosF != "" {
		if err := runScenarioMatrix(opts, w, *scenariosF); err != nil {
			return fmt.Errorf("scenario matrix: %w", err)
		}
	}
	fmt.Printf("\nCSV outputs written to %s/\n", *outDir)
	return nil
}

func parseFigs(s string) (map[int]bool, error) {
	all := []int{1, 5, 6, 7, 8, 9, 10, 11, 12}
	out := make(map[int]bool)
	if s == "none" {
		return out, nil
	}
	if s == "all" {
		for _, f := range all {
			out[f] = true
		}
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad figure %q", part)
		}
		valid := false
		for _, f := range all {
			if f == n {
				valid = true
			}
		}
		if !valid {
			return nil, fmt.Errorf("figure %d is not part of the paper's evaluation", n)
		}
		out[n] = true
	}
	return out, nil
}
