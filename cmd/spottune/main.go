// Command spottune runs one simulated hyper-parameter-tuning campaign and
// prints its report: SpotTune itself, any registered provisioning policy,
// or the legacy Single-Spot baseline loop, over any of the paper's Table II
// workloads.
//
// Usage:
//
//	spottune -workload ResNet -theta 0.7
//	spottune -workload SVM -policy spot-od-fallback
//	spottune -workload LoR -policy diversified-spot -basetype r4.xlarge -alloc capacity-optimized
//	spottune -workload LoR -tuner hyperband
//	spottune -workload LoR -baseline r4.large
//	spottune -workload GBTR -theta 0.5 -pred oracle -real
//	spottune -workload LoR -trace campaign.jsonl          # flight recorder + cost attribution
//	spottune -workload LoR -resilience adaptive -deadline 24h  # recovery strategy + degradation ladder
//	spottune -workload LoR -service 8                     # multi-tenant service smoke: 8 tenants on shared markets
//
// Run with -help to see the registered policies and tuners.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spottune/internal/campaign"
	"spottune/internal/core"
	"spottune/internal/obs"
	"spottune/internal/policy"
	"spottune/internal/resilience"
	"spottune/internal/search"
	"spottune/internal/service"
	"spottune/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spottune:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl      = flag.String("workload", "LoR", "Table II workload: LoR, SVM, GBTR, LiR, AlexNet, ResNet")
		theta   = flag.Float64("theta", 0.7, "early-shutdown rate θ in (0, 1]")
		mcnt    = flag.Int("mcnt", 3, "models continued to full training")
		conc    = flag.Int("concurrent", 1, "max concurrently deployed trials")
		polName = flag.String("policy", policy.SpotTuneName,
			"provisioning policy: "+strings.Join(policy.Names(), ", "))
		tunName = flag.String("tuner", search.SpotTuneName,
			"search strategy: "+strings.Join(search.Names(), ", "))
		eta      = flag.Int("eta", 0, "halving factor η for successive-halving/hyperband (0 = default 3)")
		baseline = flag.String("baseline", "", "run the legacy Single-Spot baseline loop on this instance type instead of a policy")
		pred     = flag.String("pred", "constant", "revocation predictor: revpred, tributary, logreg, oracle, constant, none")
		seed     = flag.Uint64("seed", 1, "seed for markets, noise, and bids")
		scale    = flag.Float64("scale", 0.5, "workload scale")
		real     = flag.Bool("real", false, "record curves with real pure-Go training (slower) instead of synthetic curves")
		days     = flag.Int("days", 8, "days of market history to generate")
		train    = flag.Int("train", 2, "days of history used to train predictors")
		trace    = flag.String("trace", "", "flight-recorder output path; turns tracing on and prints the per-trial cost attribution")
		traceFmt = flag.String("trace-format", "jsonl", "trace format: jsonl or chrome")
		resName  = flag.String("resilience", resilience.FixedName,
			"recovery strategy: "+strings.Join(resilience.Names(), ", "))
		deadline = flag.Duration("deadline", 0, "campaign completion deadline; 0 disables the degradation ladder")
		budget   = flag.Float64("budget", 0, "campaign spend cap in USD for ladder decisions; 0 = unconstrained")
		baseType = flag.String("basetype", "", "catalog compatibility anchor: narrow the fleet to types at least as powerful as this one (\"\" = whole catalog)")
		alloc    = flag.String("alloc", "", "diversified-spot allocation strategy: "+strings.Join(policy.AllocationNames(), ", ")+" (\"\" = lowest-price)")
		svc      = flag.Int("service", 0, "multi-tenant service smoke: run this many tenant campaigns on shared contended spot markets instead of one campaign (0 = off)")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nRegistered provisioning policies:\n")
		for _, info := range policy.Infos() {
			fmt.Fprintf(out, "  %-18s %s\n", info.Name, info.Doc)
		}
		fmt.Fprintf(out, "\nRegistered tuners (search strategies):\n")
		for _, info := range search.Infos() {
			fmt.Fprintf(out, "  %-18s %s\n", info.Name, info.Doc)
		}
		fmt.Fprintf(out, "\nRegistered recovery strategies:\n")
		for _, info := range resilience.Infos() {
			fmt.Fprintf(out, "  %-18s %s\n", info.Name, info.Doc)
		}
	}
	flag.Parse()

	bench, err := workload.SuiteByName(*wl, workload.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d HP settings, max_trial_steps=%d, checkpoint=%.0fMB\n",
		bench.Name, len(bench.HPs), bench.MaxTrialSteps, bench.CheckpointMB)

	var curves workload.Curves
	if *real {
		fmt.Println("recording curves with real training ...")
		curves, err = bench.RecordCurves()
		if err != nil {
			return err
		}
	} else {
		curves = bench.SyntheticCurves(*seed)
	}

	fmt.Printf("assembling environment (predictor=%s) ...\n", *pred)
	env, err := campaign.NewEnvironment(campaign.EnvOptions{
		Seed:      *seed,
		Days:      *days,
		TrainDays: *train,
		Predictor: campaign.PredictorKind(*pred),
	})
	if err != nil {
		return err
	}

	if *svc > 0 {
		if *baseline != "" {
			return fmt.Errorf("-service and -baseline are mutually exclusive " +
				"(the legacy baseline loop runs one solo campaign)")
		}
		if *mcnt != 3 || *conc != 1 || *eta != 0 || *alloc != "" {
			return fmt.Errorf("-service and -mcnt/-concurrent/-eta/-alloc are mutually exclusive " +
				"(tenants run with campaign defaults; -policy/-tuner/-resilience are forwarded per-tenant)")
		}
		return runServiceSmoke(env, bench, curves, serviceSmokeOpts{
			tenants: *svc, seed: *seed,
			policy: *polName, tuner: *tunName, resilience: *resName,
			deadline: *deadline, budget: *budget, baseType: *baseType,
			trace: *trace, traceFmt: *traceFmt,
		})
	}

	var rep *core.Report
	var rec *obs.Recording
	if *baseline != "" {
		if *polName != policy.SpotTuneName {
			return fmt.Errorf("-baseline and -policy are mutually exclusive "+
				"(the legacy baseline loop ignores policies; did you mean -policy %s alone?)", *polName)
		}
		if *tunName != search.SpotTuneName {
			return fmt.Errorf("-baseline and -tuner are mutually exclusive "+
				"(the legacy baseline loop ignores tuners; did you mean -tuner %s alone?)", *tunName)
		}
		if *trace != "" {
			return fmt.Errorf("-baseline and -trace are mutually exclusive " +
				"(the legacy baseline loop predates the flight recorder)")
		}
		if *resName != resilience.FixedName || *deadline != 0 || *budget != 0 {
			return fmt.Errorf("-baseline and -resilience/-deadline/-budget are mutually exclusive " +
				"(the legacy baseline loop predates the recovery-strategy layer)")
		}
		if *baseType != "" || *alloc != "" {
			return fmt.Errorf("-baseline and -basetype/-alloc are mutually exclusive " +
				"(the legacy baseline loop predates the catalog layer)")
		}
		rep, err = env.RunSingleSpot(bench, curves, *baseline, *seed)
	} else {
		rep, err = env.RunPolicy(bench, curves, campaign.Options{
			Theta:         *theta,
			MCnt:          *mcnt,
			MaxConcurrent: *conc,
			Seed:          *seed,
			Policy:        *polName,
			Tuner:         *tunName,
			TunerParams:   search.Params{Eta: *eta},
			Resilience:    *resName,
			Deadline:      *deadline,
			Budget:        *budget,
			BaseType:      *baseType,
			PolicyParams:  policy.Params{Allocation: *alloc},
			Trace:         *trace != "",
			Inspect: func(d *campaign.RunDetail) error {
				rec = d.Trace
				return nil
			},
		})
	}
	if err != nil {
		return err
	}
	printReport(rep, bench, curves)
	if rec != nil {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteTrace(f, *traceFmt, rec); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntrace (%d events) written to %s (format %s)\n", rec.Len(), *trace, *traceFmt)
		fmt.Println("\nper-trial cost attribution (trace-derived, ledger-reconciled):")
		if err := obs.Attribute(rec).WriteTable(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// serviceSmokeOpts carries the per-tenant knobs forwarded into the smoke
// battery.
type serviceSmokeOpts struct {
	tenants    int
	seed       uint64
	policy     string
	tuner      string
	resilience string
	deadline   time.Duration
	budget     float64
	baseType   string
	trace      string
	traceFmt   string
}

// runServiceSmoke runs a small multi-tenant battery through the sharded
// world engine with contention on — co-resident tenants share per-type spot
// capacity and demand-surge pricing — then prints the service summary and
// the trace-derived per-tenant attribution table.
func runServiceSmoke(env *campaign.Environment, bench *workload.Benchmark, curves workload.Curves, o serviceSmokeOpts) error {
	battery := service.DefaultBattery(o.tenants, o.seed)
	for i := range battery {
		battery[i].Policy = o.policy
		battery[i].Tuner = o.tuner
		battery[i].Resilience = o.resilience
		battery[i].Deadline = o.deadline
		battery[i].Budget = o.budget
		battery[i].BaseType = o.baseType
	}
	cfg := service.Config{
		Shards:      2,
		MaxInFlight: 4,
		Contention:  true,
		Capacity:    4,
		SurgeSlope:  0.5,
		Trace:       true,
	}
	fmt.Printf("\nservice smoke: %d tenants on %d shards (in-flight %d, shared capacity %d/type, surge slope %.2f)\n",
		o.tenants, cfg.Shards, cfg.MaxInFlight, cfg.Capacity, cfg.SurgeSlope)
	sum, err := service.Run(env, bench, curves, battery, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("admitted %d, rejected %d, failed %d across %d waves; total spend $%.4f, cost gini %.3f\n",
		sum.Admitted, sum.Rejected, sum.Failed, sum.Waves, sum.TotalCost, sum.CostGini)
	fmt.Println("\nper-tenant attribution (trace-derived):")
	if err := obs.AttributeTenants(sum.Trace).WriteTable(os.Stdout); err != nil {
		return err
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteTrace(f, o.traceFmt, sum.Trace); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nservice trace (%d events) written to %s (format %s)\n", sum.Trace.Len(), o.trace, o.traceFmt)
	}
	for _, v := range sum.Capacity {
		fmt.Fprintf(os.Stderr, "capacity audit: %s: %s\n", v.Code, v.Detail)
	}
	switch {
	case len(sum.Capacity) > 0:
		return fmt.Errorf("%d capacity-oversubscription violations", len(sum.Capacity))
	case sum.Violations > 0:
		return fmt.Errorf("%d per-campaign invariant violations", sum.Violations)
	case sum.Failed > 0:
		return fmt.Errorf("%d campaigns failed", sum.Failed)
	}
	fmt.Println("invariant audit: every tenant sound")
	return nil
}

func printReport(rep *core.Report, bench *workload.Benchmark, curves workload.Curves) {
	fmt.Printf("\n=== %s (θ=%.1f) ===\n", rep.Approach, rep.Theta)
	if rep.Tuner != "" {
		fmt.Printf("tuner          %s\n", rep.Tuner)
	}
	fmt.Printf("JCT            %v\n", rep.JCT.Round(time.Second))
	fmt.Printf("cost           $%.4f (gross $%.4f, refunded $%.4f = %.1f%%)\n",
		rep.NetCost, rep.GrossCost, rep.Refund, 100*rep.RefundFraction())
	fmt.Printf("steps          %d total, %d free (%.1f%%)\n",
		rep.TotalSteps, rep.FreeSteps, 100*rep.FreeStepFraction())
	fmt.Printf("deployments    %d (%d on-demand, %d notices, %d revocations)\n",
		rep.Deployments, rep.OnDemandDeployments, rep.Notices, rep.Revocations)
	fmt.Printf("ckpt/restore   %v / %v (%.2f%% of JCT)\n",
		rep.CheckpointTime.Round(time.Second), rep.RestoreTime.Round(time.Second),
		100*rep.OverheadFraction())
	if rep.Resilience != resilience.FixedName || rep.LostSteps > 0 ||
		rep.Migrations > 0 || len(rep.BlackoutRetries) > 0 || rep.Deadline > 0 {
		retries := 0
		for _, n := range rep.BlackoutRetries {
			retries += n
		}
		fmt.Printf("resilience     %s (lost %d steps, %d migrations, %d blackout retries, %d gave up)\n",
			rep.Resilience, rep.LostSteps, rep.Migrations, retries, len(rep.GaveUp))
		if rep.Deadline > 0 {
			met := "met"
			if rep.DeadlineMissed {
				met = "MISSED"
			}
			fmt.Printf("deadline       %v (%s; degradation level %d after %d transitions)\n",
				rep.Deadline, met, rep.DegradationLevel, rep.DegradationTransitions)
		}
	}
	fmt.Printf("best HP        %s\n", rep.Best)

	finals, trueBest, err := campaign.TrueFinals(bench, curves)
	if err == nil {
		marker := "MISS"
		if rep.Best == trueBest {
			marker = "HIT"
		}
		fmt.Printf("true best      %s (%s)\n", trueBest, marker)
		type kv struct {
			id   string
			pred float64
		}
		var rows []kv
		for id, v := range rep.PredictedFinals {
			rows = append(rows, kv{id, v})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].pred < rows[j].pred })
		fmt.Println("ranking (predicted vs true final metric):")
		for i, r := range rows {
			if i == 5 {
				fmt.Printf("  ... %d more\n", len(rows)-5)
				break
			}
			fmt.Printf("  %2d. %-46s pred %.4f  true %.4f\n", i+1, r.id, r.pred, finals[r.id])
		}
	}
}
