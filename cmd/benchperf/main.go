// Command benchperf converts `go test -bench -benchmem` output (read from
// stdin) into a machine-readable BENCH_perf.json artifact: ns/op, B/op and
// allocs/op per micro benchmark, plus any custom b.ReportMetric values.
// When a baseline file is supplied (the committed pre-optimization numbers
// in BENCH_baseline.json), the artifact also records per-benchmark
// speedup and allocation-reduction factors, prints a per-benchmark delta
// table, and exits non-zero when any tracked benchmark has regressed past
// the -threshold (so `make bench` doubles as a perf-regression gate).
//
// Usage:
//
//	go test -bench '...' -run '^$' -benchmem . | benchperf -out BENCH_perf.json
//	go test -bench '...' -run '^$' -benchmem . | benchperf -baseline BENCH_baseline.json -out BENCH_perf.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured numbers.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Delta is the before/after comparison against the recorded baseline.
type Delta struct {
	SpeedupNs    float64 `json:"speedup_ns"`              // baseline ns / current ns
	AllocsFactor float64 `json:"allocs_factor,omitempty"` // baseline allocs / current allocs
}

// RatioGate records one -ratio check: ns/op of Num over ns/op of Den,
// gated at Max (the traced-vs-untraced overhead lane).
type RatioGate struct {
	Num   string  `json:"num"`
	Den   string  `json:"den"`
	Ratio float64 `json:"ratio"`
	Max   float64 `json:"max"`
}

// Report is the BENCH_perf.json schema.
type Report struct {
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Baseline   map[string]Result `json:"baseline,omitempty"`
	VsBaseline map[string]Delta  `json:"vs_baseline,omitempty"`
	Ratio      *RatioGate        `json:"ratio,omitempty"`
}

// benchLine matches `BenchmarkName[-procs]   N   12345 ns/op   <rest>`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// metricPart matches one `<value> <unit>` pair from the tail of a line.
var metricPart = regexp.MustCompile(`([0-9.eE+-]+) (\S+)`)

func main() {
	var (
		out       = flag.String("out", "BENCH_perf.json", "output JSON path")
		baseline  = flag.String("baseline", "", "baseline JSON (same schema) to diff against")
		threshold = flag.Float64("threshold", 0.10, "max tolerated slowdown vs baseline (fraction; negative disables the gate)")
		ratio     = flag.String("ratio", "", "benchmark pair NUM,DEN (without the Benchmark prefix): also gate on ns/op(NUM)/ns/op(DEN) ≤ -maxratio")
		maxRatio  = flag.Float64("maxratio", 1.05, "max tolerated ns/op ratio for the -ratio pair")
	)
	flag.Parse()
	if err := run(*out, *baseline, *threshold, *ratio, *maxRatio); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
}

func run(out, baselinePath string, threshold float64, ratio string, maxRatio float64) error {
	rep := Report{
		Note:       "ns/op, B/op, allocs/op per micro benchmark; vs_baseline.speedup_ns = baseline/current (higher is faster)",
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: echo the raw benchmark output
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns}
		for _, part := range metricPart.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(part[1], 64)
			if err != nil {
				continue
			}
			switch part[2] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[part[2]] = v
			}
		}
		rep.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Baseline = base.Benchmarks
		rep.VsBaseline = map[string]Delta{}
		for name, cur := range rep.Benchmarks {
			b, ok := base.Benchmarks[name]
			if !ok || cur.NsPerOp == 0 {
				continue
			}
			d := Delta{SpeedupNs: b.NsPerOp / cur.NsPerOp}
			if cur.AllocsPerOp > 0 && b.AllocsPerOp > 0 {
				d.AllocsFactor = b.AllocsPerOp / cur.AllocsPerOp
			}
			rep.VsBaseline[name] = d
		}
	}

	var ratioErr error
	if ratio != "" {
		gate, err := checkRatio(rep, ratio, maxRatio)
		if err != nil {
			return err
		}
		rep.Ratio = gate
		fmt.Printf("\nratio gate: %s / %s = %.4f (max %.4f)\n", gate.Num, gate.Den, gate.Ratio, gate.Max)
		if gate.Ratio > gate.Max {
			ratioErr = fmt.Errorf("ratio %s/%s = %.4f exceeds max %.4f (%.1f%% overhead)",
				gate.Num, gate.Den, gate.Ratio, gate.Max, (gate.Ratio-1)*100)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if ratioErr != nil {
		return ratioErr
	}

	// The artifact is on disk either way; the delta table and the gate only
	// apply when there is a baseline to compare against.
	if len(rep.VsBaseline) == 0 {
		return nil
	}
	return printDeltas(rep, threshold)
}

// checkRatio resolves the -ratio pair against the measured benchmarks and
// computes ns/op(num)/ns/op(den).
func checkRatio(rep Report, pair string, maxRatio float64) (*RatioGate, error) {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("-ratio wants NUM,DEN, got %q", pair)
	}
	num, den := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	nr, ok := rep.Benchmarks[num]
	if !ok {
		return nil, fmt.Errorf("-ratio: benchmark %q not found on stdin", num)
	}
	dr, ok := rep.Benchmarks[den]
	if !ok {
		return nil, fmt.Errorf("-ratio: benchmark %q not found on stdin", den)
	}
	if dr.NsPerOp == 0 {
		return nil, fmt.Errorf("-ratio: benchmark %q measured 0 ns/op", den)
	}
	return &RatioGate{Num: num, Den: den, Ratio: nr.NsPerOp / dr.NsPerOp, Max: maxRatio}, nil
}

// printDeltas renders the per-benchmark comparison table and enforces the
// regression gate: any benchmark tracked by the baseline whose current ns/op
// exceeds baseline*(1+threshold) fails the run.
func printDeltas(rep Report, threshold float64) error {
	names := make([]string, 0, len(rep.VsBaseline))
	for name := range rep.VsBaseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressed []string
	fmt.Printf("\n%-34s %14s %14s %9s %9s  %s\n",
		"benchmark", "baseline ns/op", "current ns/op", "speedup", "allocs×", "status")
	for _, name := range names {
		d := rep.VsBaseline[name]
		base, cur := rep.Baseline[name], rep.Benchmarks[name]
		status := "ok"
		slowdown := cur.NsPerOp/base.NsPerOp - 1
		if threshold >= 0 && slowdown > threshold {
			status = fmt.Sprintf("REGRESSED (%.0f%% slower)", slowdown*100)
			regressed = append(regressed, name)
		}
		allocs := "-"
		if d.AllocsFactor > 0 {
			allocs = fmt.Sprintf("%.2f", d.AllocsFactor)
		}
		fmt.Printf("%-34s %14.1f %14.1f %8.2fx %9s  %s\n",
			name, base.NsPerOp, cur.NsPerOp, d.SpeedupNs, allocs, status)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs baseline: %s",
			len(regressed), threshold*100, strings.Join(regressed, ", "))
	}
	return nil
}
