// Command scenarios runs the scenario × policy matrix: named market regimes
// and fault-injection scenarios crossed with every registered provisioning
// policy, each cell a full simulated HPT campaign audited by the simulator
// invariant checker. Results land as a per-cell CSV plus an ASCII table;
// any invariant violation makes the command exit non-zero.
//
// Usage:
//
//	scenarios -quick                          # full battery, quick fidelity
//	scenarios -quick -scenarios calm,crunch -policies spottune,on-demand
//	scenarios -quick -tuners all              # cross-tuner lane: every search strategy per cell
//	scenarios -list                           # what's available
//	scenarios -seed 7 -out results            # full fidelity (slow: trains predictors per scenario)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spottune/internal/market"
	"spottune/internal/policy"
	"spottune/internal/scenario"
	"spottune/internal/search"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list available scenarios, regimes, and policies, then exit")
		names     = flag.String("scenarios", "all", "comma-separated scenario names from the default battery, or 'all'")
		policies  = flag.String("policies", "all", "comma-separated provisioning policy names, or 'all'")
		tuners    = flag.String("tuners", search.SpotTuneName, "comma-separated tuner (search strategy) names, or 'all' for every registered tuner")
		workloadF = flag.String("workload", "LoR", "Table II workload for every cell")
		seed      = flag.Uint64("seed", 1, "matrix seed; same seed, bit-identical CSV")
		quick     = flag.Bool("quick", false, "fast mode: synthetic curves, constant revocation predictor, short traces")
		theta     = flag.Float64("theta", 0.7, "early-shutdown rate θ for every cell")
		outDir    = flag.String("out", "results", "output directory for scenarios.csv")
	)
	flag.Parse()

	if *list {
		printInventory()
		return nil
	}

	if *theta <= 0 || *theta > 1 {
		// The library clamps silently (zero value = default); at the CLI
		// boundary a typo must not run a different experiment than asked.
		return fmt.Errorf("-theta %v outside (0, 1]", *theta)
	}
	specs, err := scenario.ParseSpecList(*names)
	if err != nil {
		return err
	}
	var pols []string
	if p := splitArg(*policies); p != nil {
		pols = p
	}
	tuns := splitArg(*tuners)
	if tuns == nil {
		// "all" fans the full tuner axis; the scenario library's own
		// default is spottune-only, so expand explicitly here.
		tuns = search.Names()
	}

	opt := scenario.Options{
		Seed:     *seed,
		Quick:    *quick,
		Workload: *workloadF,
		Theta:    *theta,
		Policies: pols,
		Tuners:   tuns,
	}
	res, err := scenario.Matrix{Specs: specs}.Run(opt)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*outDir, "scenarios.csv")
	if err := res.WriteCSVFile(path); err != nil {
		return err
	}

	printTable(res)
	fmt.Printf("\nper-cell CSV written to %s\n", path)

	if err := res.ViolationError(os.Stderr); err != nil {
		return err
	}
	fmt.Println("invariant audit: every cell sound")
	return nil
}

func splitArg(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printInventory() {
	fmt.Println("scenarios (default battery):")
	for _, s := range scenario.DefaultSpecs() {
		extra := ""
		if len(s.Faults) > 0 {
			kinds := make([]string, 0, len(s.Faults))
			for _, f := range s.Faults {
				kinds = append(kinds, string(f.Kind))
			}
			extra = " + " + strings.Join(kinds, ", ")
		}
		fmt.Printf("  %-22s regime %q%s\n", s.Name, s.Regime, extra)
	}
	fmt.Println("\nmarket regimes:")
	for _, r := range market.RegimeInfos() {
		fmt.Printf("  %-12s %s\n", r.Name, r.Doc)
	}
	fmt.Println("\nprovisioning policies:")
	for _, p := range policy.Infos() {
		fmt.Printf("  %-17s %s\n", p.Name, p.Doc)
	}
	fmt.Println("\ntuners (search strategies):")
	for _, t := range search.Infos() {
		fmt.Printf("  %-18s %s\n", t.Name, t.Doc)
	}
}

// printTable renders the matrix grouped by (scenario, tuner), one row per
// policy.
func printTable(res *scenario.Result) {
	last := ""
	for _, c := range res.Cells {
		if group := c.Scenario + "/" + c.Tuner; group != last {
			fmt.Printf("\n== %s (regime %s, tuner %s, workload %s) ==\n", c.Scenario, c.Regime, c.Tuner, c.Workload)
			last = c.Scenario + "/" + c.Tuner
		}
		flag := ""
		if len(c.Violations) > 0 {
			flag = fmt.Sprintf("  !! %d VIOLATIONS", len(c.Violations))
		}
		fmt.Printf("  %-17s cost $%8.3f  JCT %7.2fh  refund %5.1f%%  notices %3d  od %d/%d%s\n",
			c.Policy, c.Cost, c.JCTHours, 100*c.RefundFrac, c.Notices,
			c.OnDemandDeployments, c.Deployments, flag)
	}
}
