// Command scenarios runs the scenario × policy matrix: named market regimes
// and fault-injection scenarios crossed with every registered provisioning
// policy, each cell a full simulated HPT campaign audited by the simulator
// invariant checker. Results land as a per-cell CSV plus an ASCII table;
// any invariant violation makes the command exit non-zero.
//
// Usage:
//
//	scenarios -quick                          # full battery, quick fidelity
//	scenarios -quick -scenarios calm,crunch -policies spottune,on-demand
//	scenarios -quick -tuners all              # cross-tuner lane: every search strategy per cell
//	scenarios -quick -replicates 100 -stream  # large grid: live progress + aggregate percentiles
//	scenarios -quick -storm all -strategies all -chaos-seed 1 \
//	          -resiliencejson results/BENCH_resilience.json
//	                                          # chaos battery: seeded storms × every recovery strategy
//	scenarios -quick -tenants 1000 -shards 8  # service mode: multi-tenant battery on shared markets
//	scenarios -quick -tenants 100 -trace-tenant t-00042 -trace t42.jsonl
//	                                          # explain-this-tenant: flight-record one tenant's campaign
//	scenarios -list                           # what's available
//	scenarios -seed 7 -out results            # full fidelity (slow: trains predictors per scenario)
//
// Every run goes through the streaming matrix runner: cells are written to
// the CSV as they finish (memory stays flat no matter how many replicates),
// and the default single-replicate grid is bit-identical to the legacy
// buffered path. -stream swaps the per-cell table for a live progress line
// plus quantile summaries; there the per-cell CSV is opt-in via -percell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"spottune/internal/campaign"
	"spottune/internal/core"
	"spottune/internal/market"
	"spottune/internal/obs"
	"spottune/internal/policy"
	"spottune/internal/resilience"
	"spottune/internal/scenario"
	"spottune/internal/search"
	"spottune/internal/service"
	"spottune/internal/stats"
	"spottune/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list available scenarios, regimes, and policies, then exit")
		names     = flag.String("scenarios", "all", "comma-separated scenario names from the default battery, or 'all'")
		policies  = flag.String("policies", "all", "comma-separated provisioning policy names, or 'all'")
		tuners    = flag.String("tuners", search.SpotTuneName, "comma-separated tuner (search strategy) names, or 'all' for every registered tuner")
		workloadF = flag.String("workload", "LoR", "Table II workload for every cell")
		seed      = flag.Uint64("seed", 1, "matrix seed; same seed, bit-identical CSV")
		quick     = flag.Bool("quick", false, "fast mode: synthetic curves, constant revocation predictor, short traces")
		theta     = flag.Float64("theta", 0.7, "early-shutdown rate θ for every cell")
		outDir    = flag.String("out", "results", "output directory for scenarios.csv")
		reps      = flag.Int("replicates", 1, "seed-axis replicates per scenario (each with a derived campaign seed)")
		stream    = flag.Bool("stream", false, "summary mode: live progress + aggregate percentiles instead of the per-cell table")
		percell   = flag.Bool("percell", false, "with -stream, still write the per-cell CSV (it is always written otherwise)")
		stormF    = flag.String("storm", "", "chaos battery: replace -scenarios with seeded storm specs for this regime (see -list), or 'all'")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the -storm schedule generator; same (regime, seed), bit-identical storm")
		stratsF   = flag.String("strategies", resilience.FixedName, "comma-separated recovery strategy names, or 'all' for every registered strategy")
		resJSON   = flag.String("resiliencejson", "", "write battery-wide resilience metrics (survival rate, lost-work percentiles, degradation transitions) to this JSON file")
		trace     = flag.String("trace", "", "flight-recorder output path; turns tracing on (same seed, byte-identical file)")
		traceFmt  = flag.String("trace-format", "jsonl", "trace format: jsonl, chrome, or all (with 'all', chrome lands next to -trace with a .trace.json suffix)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with `go tool pprof`)")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")

		tenants   = flag.Int("tenants", 0, "service mode: run this many multi-tenant campaigns through the sharded world engine instead of the scenario matrix (0 = off)")
		shards    = flag.Int("shards", 4, "service mode: number of world shards")
		inflight  = flag.Int("inflight", 8, "service mode: max in-flight campaigns per shard")
		admission = flag.String("admission", service.AdmissionFIFO, "service mode: admission policy: "+strings.Join(service.AdmissionNames(), ", "))
		capacity  = flag.Int("capacity", 4, "service mode: shared spot capacity per instance type (0 = uncontended private markets)")
		surge     = flag.Float64("surge", 0.5, "service mode: demand surge slope — price multiplier slope at full utilization")
		maxBudget = flag.Float64("max-budget", 0, "service mode: admission budget cap in USD; tenant budgets cycle around the cap so admission control has texture (0 = admit all)")
		traceTen  = flag.String("trace-tenant", "", "service mode: flight-record exactly this tenant's campaign and write it to -trace (the explain-this-tenant workflow)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scenarios: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "scenarios: memprofile:", err)
			}
		}()
	}

	if *list {
		printInventory()
		return nil
	}

	if *tenants > 0 {
		// Service mode replaces the matrix wholesale, like -storm replaces
		// the named battery: mixing the two would silently drop one.
		if *stormF != "" || *names != "all" {
			return fmt.Errorf("-tenants (service mode) and -storm/-scenarios are mutually exclusive")
		}
		return runServiceMode(serviceArgs{
			workload: *workloadF, seed: *seed, quick: *quick,
			tenants: *tenants, shards: *shards, inflight: *inflight,
			admission: *admission, capacity: *capacity, surge: *surge,
			maxBudget: *maxBudget, traceTenant: *traceTen,
			tracePath: *trace, traceFmt: *traceFmt,
		})
	}
	if *traceTen != "" {
		return fmt.Errorf("-trace-tenant requires -tenants (service mode)")
	}

	if *theta <= 0 || *theta > 1 {
		// The library clamps silently (zero value = default); at the CLI
		// boundary a typo must not run a different experiment than asked.
		return fmt.Errorf("-theta %v outside (0, 1]", *theta)
	}
	var specs []scenario.Spec
	var err error
	if *stormF != "" {
		// The chaos battery replaces the named battery wholesale — mixing
		// the two would silently drop one, so an explicit -scenarios
		// alongside -storm is a contradiction, not a union.
		if *names != "all" {
			return fmt.Errorf("-storm and -scenarios are mutually exclusive")
		}
		specs, err = scenario.StormSpecs(*stormF, *chaosSeed)
	} else {
		specs, err = scenario.ParseSpecList(*names)
	}
	if err != nil {
		return err
	}
	var pols []string
	if p := splitArg(*policies); p != nil {
		pols = p
	}
	tuns := splitArg(*tuners)
	if tuns == nil {
		// "all" fans the full tuner axis; the scenario library's own
		// default is spottune-only, so expand explicitly here.
		tuns = search.Names()
	}
	strats := splitArg(*stratsF)
	if strats == nil {
		strats = resilience.Names()
	}

	opt := scenario.Options{
		Seed:       *seed,
		Quick:      *quick,
		Workload:   *workloadF,
		Theta:      *theta,
		Policies:   pols,
		Tuners:     tuns,
		Strategies: strats,
		Trace:      *trace != "",
	}
	sopt := scenario.StreamOptions{Options: opt, Replicates: *reps}

	// Trace sinks stream cell by cell in grid order, so the files are
	// byte-identical for a given seed regardless of worker count and the
	// recordings never accumulate in memory.
	var (
		jsonlF  *os.File
		chromeF *os.File
		chromeW *obs.ChromeWriter
	)
	if *trace != "" {
		wantJSONL, wantChrome := false, false
		switch *traceFmt {
		case "jsonl":
			wantJSONL = true
		case "chrome":
			wantChrome = true
		case "all":
			wantJSONL, wantChrome = true, true
		default:
			return fmt.Errorf("-trace-format %q: want jsonl, chrome, or all", *traceFmt)
		}
		if dir := filepath.Dir(*trace); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		if wantJSONL {
			if jsonlF, err = os.Create(*trace); err != nil {
				return err
			}
			defer jsonlF.Close()
		}
		if wantChrome {
			path := *trace
			if wantJSONL {
				path += ".trace.json"
			}
			if chromeF, err = os.Create(path); err != nil {
				return err
			}
			defer chromeF.Close()
			chromeW = obs.NewChromeWriter(chromeF)
		}
	}

	// Cells stream straight into the CSV as they finish; the full cell table
	// never exists in memory, so the footprint is flat in the grid size.
	var (
		cw   *scenario.CellWriter
		f    *os.File
		path string
	)
	if !*stream || *percell {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(*outDir, "scenarios.csv")
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		cw, err = scenario.NewCellWriter(f)
		if err != nil {
			return err
		}
	}

	// Resilience aggregates accumulate cell by cell, per strategy — the
	// whole-battery JSON is rendered from them after the stream drains.
	var (
		resPer map[string]*resAgg
		resAll *resAgg
	)
	if *resJSON != "" {
		resPer = map[string]*resAgg{}
		resAll = newResAgg()
	}

	tab := tablePrinter{replicates: *reps, quiet: *stream}
	sopt.OnCell = func(c scenario.Cell) error {
		if cw != nil {
			if err := cw.Write(c); err != nil {
				return err
			}
		}
		if resPer != nil {
			a := resPer[c.Strategy]
			if a == nil {
				a = newResAgg()
				resPer[c.Strategy] = a
			}
			a.add(c.Report)
			resAll.add(c.Report)
		}
		if c.Trace != nil {
			if jsonlF != nil {
				if err := obs.WriteTrace(jsonlF, "jsonl", c.Trace); err != nil {
					return err
				}
			}
			if chromeW != nil {
				if err := chromeW.Add(c.Trace); err != nil {
					return err
				}
			}
		}
		tab.cell(c)
		for _, v := range c.Violations {
			fmt.Fprintf(os.Stderr, "%s/%s/%s: invariant violated: %v\n", c.Scenario, c.Tuner, c.Policy, v)
			printViolationEvents(os.Stderr, v.Events)
		}
		return nil
	}
	if *stream {
		sopt.Progress = os.Stderr
	}
	sum, err := scenario.Matrix{Specs: specs}.Stream(sopt)
	if err != nil {
		return err
	}
	if cw != nil {
		if err := cw.Flush(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nper-cell CSV written to %s\n", path)
	}
	if chromeW != nil {
		if err := chromeW.Close(); err != nil {
			return err
		}
	}
	if jsonlF != nil {
		if err := jsonlF.Close(); err != nil {
			return err
		}
	}
	if *trace != "" {
		fmt.Printf("flight-recorder trace written to %s (format %s)\n", *trace, *traceFmt)
	}
	if *resJSON != "" {
		if err := writeResilienceJSON(*resJSON, *stormF, *chaosSeed, resAll, resPer); err != nil {
			return err
		}
		fmt.Printf("resilience metrics written to %s\n", *resJSON)
	}
	if *stream {
		printSummary(sum)
	}
	if sum.Metrics != nil {
		printMetrics(sum.Metrics)
	}

	if sum.Violations > 0 {
		return fmt.Errorf("%d invariant violations across the matrix", sum.Violations)
	}
	fmt.Println("invariant audit: every cell sound")
	return nil
}

// serviceArgs carries the service-mode flag values.
type serviceArgs struct {
	workload         string
	seed             uint64
	quick            bool
	tenants          int
	shards, inflight int
	admission        string
	capacity         int
	surge, maxBudget float64
	traceTenant      string
	tracePath        string
	traceFmt         string
}

// runServiceMode runs the sharded multi-tenant world engine instead of the
// scenario matrix: a deterministic tenant battery admitted under the chosen
// policy, spread round-robin over world shards, optionally contending for
// shared per-type spot capacity with demand-surge pricing. Any capacity
// oversubscription, per-campaign invariant violation, or failed campaign
// makes the command exit non-zero — the same audit contract as the matrix.
func runServiceMode(a serviceArgs) error {
	if a.traceTenant != "" && a.tracePath == "" {
		return fmt.Errorf("-trace-tenant needs -trace for the recording")
	}
	scale := 0.5
	envOpt := campaign.EnvOptions{Seed: a.seed, Days: 8, TrainDays: 2}
	if a.quick {
		scale = 0.2
		envOpt = campaign.EnvOptions{Seed: a.seed, Days: 5, TrainDays: 2, Predictor: campaign.PredictorConstant}
	}
	bench, err := workload.SuiteByName(a.workload, workload.Config{Seed: a.seed, Scale: scale})
	if err != nil {
		return err
	}
	env, err := campaign.NewEnvironment(envOpt)
	if err != nil {
		return err
	}
	curves := bench.SyntheticCurves(a.seed)

	battery := service.DefaultBattery(a.tenants, a.seed)
	if a.maxBudget > 0 {
		// The default battery leaves budgets unconstrained, which a capped
		// region rejects wholesale; cycle budgets around the cap instead so
		// the admission decision has texture (every third tenant is over).
		for i := range battery {
			battery[i].Budget = a.maxBudget * []float64{0.5, 0.9, 1.5}[i%3]
		}
	}
	cfg := service.Config{
		Shards:      a.shards,
		MaxInFlight: a.inflight,
		Admission:   a.admission,
		MaxBudget:   a.maxBudget,
		Contention:  a.capacity > 0,
		Capacity:    a.capacity,
		SurgeSlope:  a.surge,
		Trace:       true,
		TraceTenant: a.traceTenant,
	}
	mode := "uncontended private markets"
	if cfg.Contention {
		mode = fmt.Sprintf("shared capacity %d/type, surge slope %.2f", a.capacity, a.surge)
	}
	fmt.Printf("service: %d tenants on %d shards (in-flight %d, admission %s, %s)\n",
		a.tenants, a.shards, a.inflight, a.admission, mode)

	var tenantTrace *obs.Recording
	if a.traceTenant != "" {
		cfg.OnResult = func(r service.Result) {
			if r.Trace != nil {
				tenantTrace = r.Trace
			}
		}
	}
	start := time.Now()
	sum, err := service.Run(env, bench, curves, battery, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("\nadmitted %d, rejected %d, failed %d across %d waves (%.0f campaigns/s)\n",
		sum.Admitted, sum.Rejected, sum.Failed, sum.Waves,
		float64(sum.Admitted)/elapsed.Seconds())
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "metric", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		s    *stats.QuantileSketch
	}{{"cost_usd", sum.Cost}, {"jct_hours", sum.JCTHours}, {"refund_frac", sum.RefundFrac}} {
		fmt.Printf("%-12s %10.4f %10.4f %10.4f %10.4f\n",
			row.name, row.s.Quantile(0.5), row.s.Quantile(0.9), row.s.Quantile(0.99), row.s.Max())
	}
	fmt.Printf("total spend $%.2f, cost gini %.3f\n", sum.TotalCost, sum.CostGini)
	if a.tenants <= 32 {
		fmt.Println("\nper-tenant attribution (trace-derived):")
		if err := obs.AttributeTenants(sum.Trace).WriteTable(os.Stdout); err != nil {
			return err
		}
	}

	if a.tracePath != "" {
		rec := sum.Trace
		what := "service-level trace"
		if a.traceTenant != "" {
			if tenantTrace == nil {
				return fmt.Errorf("-trace-tenant %q: no such tenant in the battery", a.traceTenant)
			}
			rec = tenantTrace
			what = "tenant " + a.traceTenant + " campaign trace"
		}
		if dir := filepath.Dir(a.tracePath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		f, err := os.Create(a.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteTrace(f, a.traceFmt, rec); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s (%d events) written to %s (format %s)\n", what, rec.Len(), a.tracePath, a.traceFmt)
	}

	for _, v := range sum.Capacity {
		fmt.Fprintf(os.Stderr, "capacity audit: %s: %s\n", v.Code, v.Detail)
	}
	switch {
	case len(sum.Capacity) > 0:
		return fmt.Errorf("%d capacity-oversubscription violations", len(sum.Capacity))
	case sum.Violations > 0:
		return fmt.Errorf("%d per-campaign invariant violations", sum.Violations)
	case sum.Failed > 0:
		return fmt.Errorf("%d campaigns failed", sum.Failed)
	}
	fmt.Println("invariant audit: every tenant sound")
	return nil
}

func splitArg(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printInventory() {
	fmt.Println("scenarios (default battery):")
	for _, s := range scenario.DefaultSpecs() {
		extra := ""
		if len(s.Faults) > 0 {
			kinds := make([]string, 0, len(s.Faults))
			for _, f := range s.Faults {
				kinds = append(kinds, string(f.Kind))
			}
			extra = " + " + strings.Join(kinds, ", ")
		}
		fmt.Printf("  %-22s regime %q%s\n", s.Name, s.Regime, extra)
	}
	fmt.Println("\nmarket regimes:")
	for _, r := range market.RegimeInfos() {
		fmt.Printf("  %-12s %s\n", r.Name, r.Doc)
	}
	fmt.Println("\nprovisioning policies:")
	for _, p := range policy.Infos() {
		fmt.Printf("  %-17s %s\n", p.Name, p.Doc)
	}
	fmt.Println("\ntuners (search strategies):")
	for _, t := range search.Infos() {
		fmt.Printf("  %-18s %s\n", t.Name, t.Doc)
	}
	fmt.Println("\nrecovery strategies (-strategies):")
	for _, r := range resilience.Infos() {
		fmt.Printf("  %-10s %s\n", r.Name, r.Doc)
	}
	fmt.Println("\nstorm regimes (-storm, chaos battery):")
	for _, s := range scenario.StormInfos() {
		fmt.Printf("  %-11s %s\n", s.Name, s.Doc)
	}
	fmt.Println("\nadmission policies (-admission, service mode via -tenants):")
	fmt.Printf("  %-14s admit and start tenants in submission order\n", service.AdmissionFIFO)
	fmt.Printf("  %-14s order tenants by descending fair-share weight before sharding\n", service.AdmissionWeightedFair)
}

// resAgg accumulates resilience outcomes across cells for one recovery
// strategy; BENCH_resilience.json is rendered from these after the stream
// drains. Lost work is sketched per cell, so the p99 stays exact in memory
// no matter how many replicates the grid fans out.
type resAgg struct {
	cells, trials, gaveUp int
	lostTotal, migrations int
	retries, transitions  int
	missed                int
	lost                  *stats.QuantileSketch
}

func newResAgg() *resAgg { return &resAgg{lost: stats.NewQuantileSketch(0.01)} }

func (a *resAgg) add(rep *core.Report) {
	if rep == nil {
		return
	}
	a.cells++
	// A trial "survived" unless the retry budget abandoned it. The trial
	// census is segments ∪ gave-up: every trial that ran a step has a
	// segment, and a trial abandoned before its first step only appears in
	// GaveUp.
	seen := map[string]bool{}
	for _, s := range rep.Segments {
		seen[s.TrialID] = true
	}
	trials := len(seen)
	for _, id := range rep.GaveUp {
		if !seen[id] {
			trials++
		}
	}
	a.trials += trials
	a.gaveUp += len(rep.GaveUp)
	a.lostTotal += rep.LostSteps
	a.lost.Add(float64(rep.LostSteps))
	a.migrations += rep.Migrations
	for _, n := range rep.BlackoutRetries {
		a.retries += n
	}
	a.transitions += rep.DegradationTransitions
	if rep.DeadlineMissed {
		a.missed++
	}
}

// resSummary is the serialized form of one aggregate.
type resSummary struct {
	Cells                  int     `json:"cells"`
	Trials                 int     `json:"trials"`
	GaveUpTrials           int     `json:"gave_up_trials"`
	SurvivalRate           float64 `json:"survival_rate"`
	LostStepsTotal         int     `json:"lost_steps_total"`
	LostStepsP50           float64 `json:"lost_steps_p50"`
	LostStepsP99           float64 `json:"lost_steps_p99"`
	LostStepsMax           float64 `json:"lost_steps_max"`
	Migrations             int     `json:"migrations"`
	BlackoutRetries        int     `json:"blackout_retries"`
	DegradationTransitions int     `json:"degradation_transitions"`
	DeadlineMissedCells    int     `json:"deadline_missed_cells"`
}

func (a *resAgg) summary() resSummary {
	surv := 1.0
	if a.trials > 0 {
		surv = float64(a.trials-a.gaveUp) / float64(a.trials)
	}
	return resSummary{
		Cells:                  a.cells,
		Trials:                 a.trials,
		GaveUpTrials:           a.gaveUp,
		SurvivalRate:           surv,
		LostStepsTotal:         a.lostTotal,
		LostStepsP50:           a.lost.Quantile(0.5),
		LostStepsP99:           a.lost.Quantile(0.99),
		LostStepsMax:           a.lost.Max(),
		Migrations:             a.migrations,
		BlackoutRetries:        a.retries,
		DegradationTransitions: a.transitions,
		DeadlineMissedCells:    a.missed,
	}
}

func writeResilienceJSON(path, storm string, chaosSeed uint64, overall *resAgg, per map[string]*resAgg) error {
	out := struct {
		Storm      string                `json:"storm,omitempty"`
		ChaosSeed  uint64                `json:"chaos_seed"`
		Overall    resSummary            `json:"overall"`
		Strategies map[string]resSummary `json:"strategies"`
	}{Storm: storm, ChaosSeed: chaosSeed, Overall: overall.summary(), Strategies: map[string]resSummary{}}
	for name, a := range per {
		out.Strategies[name] = a.summary()
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// tablePrinter renders the matrix table incrementally as cells stream in,
// grouped by (scenario, replicate, tuner) in emission order — the streamed
// equivalent of the old whole-result table.
type tablePrinter struct {
	replicates int
	quiet      bool
	last       string
}

func (t *tablePrinter) cell(c scenario.Cell) {
	if t.quiet {
		return
	}
	if group := fmt.Sprintf("%s/%d/%s", c.Scenario, c.Replicate, c.Tuner); group != t.last {
		rep := ""
		if t.replicates > 1 {
			rep = fmt.Sprintf(", replicate %d", c.Replicate)
		}
		fmt.Printf("\n== %s (regime %s, tuner %s, workload %s%s) ==\n", c.Scenario, c.Regime, c.Tuner, c.Workload, rep)
		t.last = group
	}
	flag := ""
	if len(c.Violations) > 0 {
		flag = fmt.Sprintf("  !! %d VIOLATIONS", len(c.Violations))
	}
	fmt.Printf("  %-17s cost $%8.3f  JCT %7.2fh  refund %5.1f%%  notices %3d  od %d/%d%s\n",
		c.Policy, c.Cost, c.JCTHours, 100*c.RefundFrac, c.Notices,
		c.OnDemandDeployments, c.Deployments, flag)
}

// printViolationEvents renders a violation's attached flight-recorder
// context (the last few events relevant to its subject), one line per event.
func printViolationEvents(w *os.File, events []obs.Event) {
	for _, e := range events {
		subject := e.Trial
		if e.Inst != "" {
			subject += "@" + e.Inst
		}
		fmt.Fprintf(w, "    #%-5d %s %-14s %-24s %-12s a=%-12g b=%-12g n=%d\n",
			e.Seq, e.VT.UTC().Format(time.RFC3339), e.Kind, subject, e.Label, e.A, e.B, e.N)
	}
}

// printMetrics renders the battery-wide flight-recorder aggregate: exact
// event counters plus sketch percentiles per histogram.
func printMetrics(m *obs.Metrics) {
	fmt.Println("\nflight-recorder metrics (battery-wide):")
	for _, name := range m.CounterNames() {
		fmt.Printf("  %-22s %d\n", name, m.Counter(name))
	}
	hists := m.HistogramNames()
	if len(hists) == 0 {
		return
	}
	fmt.Printf("  %-22s %8s %10s %10s %10s %10s\n", "histogram", "n", "mean", "p50", "p99", "max")
	for _, name := range hists {
		s := m.Histogram(name)
		fmt.Printf("  %-22s %8d %10.4f %10.4f %10.4f %10.4f\n",
			name, s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.99), s.Max())
	}
}

// printSummary renders the streamed aggregate: exact counts plus sketch
// percentiles per headline metric.
func printSummary(sum *scenario.StreamSummary) {
	fmt.Printf("\nstreamed %d cells, %d violations\n", sum.Cells, sum.Violations)
	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", "metric", "mean", "p50", "p90", "p99", "max")
	row := func(name string, s *stats.QuantileSketch) {
		fmt.Printf("%-12s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			name, s.Mean(), s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99), s.Max())
	}
	row("cost_usd", sum.Cost)
	row("jct_hours", sum.JCTHours)
	row("refund_frac", sum.RefundFrac)
}
